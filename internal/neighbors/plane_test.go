package neighbors_test

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"anex/internal/dataset"
	"anex/internal/neighbors"
	"anex/internal/subspace"
)

// tieDataset builds a dataset over a small integer lattice: coordinates are
// drawn from {0,…,3}, so tied distances are everywhere, and the first
// `dupes` rows are exact copies of the row after them — the adversarial
// inputs for any ordering property.
func tieDataset(t *testing.T, name string, n, d, dupes int, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]float64, d)
	for f := range cols {
		cols[f] = make([]float64, n)
		for i := range cols[f] {
			cols[f][i] = float64(rng.Intn(4))
		}
	}
	for i := 0; i < dupes && i+dupes < n; i++ {
		for f := range cols {
			cols[f][i] = cols[f][i+dupes]
		}
	}
	ds, err := dataset.New(name, cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// checkPrefix requires the plane's answer at k to be, bit for bit, the
// first min(k, n−1) entries of each row of the direct computation at k.
func checkPrefix(t *testing.T, p *neighbors.Plane, v *dataset.View, k int) {
	t.Helper()
	gotIdx, gotDist, m, stride, ok, err := p.AllKNN(context.Background(), v, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("plane declined view %s at k=%d", v.Subspace().Key(), k)
	}
	wantIdx, wantDist, wantM := referenceKNN(t, v, k)
	if m != wantM {
		t.Fatalf("view %s k=%d: m=%d, want %d", v.Subspace().Key(), k, m, wantM)
	}
	for i := 0; i < v.N(); i++ {
		for j := 0; j < m; j++ {
			g, w := gotIdx[i*stride+j], wantIdx[i*m+j]
			if g != w {
				t.Fatalf("view %s k=%d point %d slot %d: idx=%d, want %d",
					v.Subspace().Key(), k, i, j, g, w)
			}
			gd, wd := gotDist[i*stride+j], wantDist[i*m+j]
			if math.Float64bits(gd) != math.Float64bits(wd) {
				t.Fatalf("view %s k=%d point %d slot %d: dist bits %x, want %x",
					v.Subspace().Key(), k, i, j, math.Float64bits(gd), math.Float64bits(wd))
			}
		}
	}
}

// TestPlanePrefixSlicingProperty pins the contract the whole plane rests
// on: AllKNN(view, k) equals the first k entries of AllKNN(view, kmax) for
// every k ≤ kmax — including duplicate rows and massively tied distances —
// on both compute paths (the delta engine's sweep/seeded answers for
// low-dimensional views, and the standard-index fallback for wide ones).
// The property holds because every path orders the kept set by the total
// order (distance bit pattern, index), making the k-list a strict prefix
// of the kmax-list.
func TestPlanePrefixSlicingProperty(t *testing.T) {
	const kmax = 15
	low := tieDataset(t, "prefix-low", 200, 6, 20, 1) // delta-eligible views
	wide := tieDataset(t, "prefix-wide", 150, 12, 15, 2)
	wideSub := subspace.New()
	for f := 0; f < 9; f++ { // 9d > the delta gate → fallback path
		wideSub = wideSub.With(f)
	}
	views := []*dataset.View{
		low.View(subspace.New(0, 1)),       // 2d sweep path
		low.View(subspace.New(0, 1, 2, 3)), // seeded delta path
		wide.View(wideSub),                 // standard-index fallback
		wide.FullView(),                    // 12d full space, fallback
	}
	for _, v := range views {
		p := neighbors.NewPlane(0)
		p.RegisterK(kmax)
		// Descending k first: the kmax entry must already serve them all.
		for k := kmax; k >= 1; k-- {
			checkPrefix(t, p, v, k)
		}
		st := p.Stats()
		if st.Computations != 1 {
			t.Errorf("view %s: %d computations serving k=1..%d, want 1", v.Subspace().Key(), st.Computations, kmax)
		}
		if st.Queries != kmax || st.Hits != kmax-1 {
			t.Errorf("view %s: queries=%d hits=%d, want %d/%d", v.Subspace().Key(), st.Queries, st.Hits, kmax, kmax-1)
		}
	}
}

// TestPlaneSingleflight: concurrent first queries of one key elect a single
// leader; everyone gets the same arrays and exactly one computation runs.
func TestPlaneSingleflight(t *testing.T) {
	ds := tieDataset(t, "flight", 200, 5, 0, 3)
	v := ds.View(subspace.New(0, 1, 2))
	p := neighbors.NewPlane(0)
	p.RegisterK(15)
	const callers = 8
	dists := make([][]float64, callers)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			_, d, _, _, ok, err := p.AllKNN(context.Background(), v, 10, 1)
			if err != nil || !ok {
				t.Errorf("caller %d: ok=%v err=%v", c, ok, err)
				return
			}
			dists[c] = d
		}(c)
	}
	wg.Wait()
	st := p.Stats()
	if st.Computations != 1 {
		t.Fatalf("%d computations for %d concurrent callers, want 1", st.Computations, callers)
	}
	if st.Queries != callers || st.Hits != callers-1 {
		t.Fatalf("queries=%d hits=%d, want %d/%d", st.Queries, st.Hits, callers, callers-1)
	}
	for c := 1; c < callers; c++ {
		if &dists[c][0] != &dists[0][0] {
			t.Fatalf("caller %d received a private copy, want the shared entry", c)
		}
	}
	if f := st.DedupFactor(); f != float64(callers) {
		t.Fatalf("dedup factor %v, want %v", f, float64(callers))
	}
}

// TestPlaneEviction: a byte budget below two resident entries keeps the
// plane at one entry, counts the eviction, and recomputes evicted keys on
// return — with the byte accounting staying within budget throughout.
func TestPlaneEviction(t *testing.T) {
	ds := tieDataset(t, "evict", 128, 6, 0, 4)
	vA, vB := ds.View(subspace.New(0, 1)), ds.View(subspace.New(2, 3))
	// One entry at n=128, kmax=10 costs 128·10·12 B + overhead ≈ 16 KB.
	p := neighbors.NewPlane(20 << 10)
	p.RegisterK(10)
	ctx := context.Background()
	if _, _, _, _, _, err := p.AllKNN(ctx, vA, 10, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, _, err := p.AllKNN(ctx, vB, 10, 1); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a one-entry budget: %+v", st)
	}
	if st.Entries != 1 {
		t.Fatalf("%d resident entries, want 1", st.Entries)
	}
	if st.ResidentBytes > st.MaxBytes {
		t.Fatalf("resident %d B exceeds budget %d B", st.ResidentBytes, st.MaxBytes)
	}
	// vA was evicted to admit vB: touching it again must recompute.
	if _, _, _, _, _, err := p.AllKNN(ctx, vA, 10, 1); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().Computations; got != 3 {
		t.Fatalf("%d computations, want 3 (A, B, A-again)", got)
	}
}

// TestPlaneUpgrade: an entry computed before a deeper consumer registered
// is transparently rebuilt at the new kmax on next access, and the deeper
// answer is correct.
func TestPlaneUpgrade(t *testing.T) {
	ds := tieDataset(t, "upgrade", 150, 5, 10, 5)
	v := ds.View(subspace.New(0, 1, 2))
	p := neighbors.NewPlane(0)
	ctx := context.Background()
	if _, _, _, _, _, err := p.AllKNN(ctx, v, 5, 1); err != nil { // kmax=5 entry
		t.Fatal(err)
	}
	checkPrefix(t, p, v, 12) // registers 12, must rebuild and serve it
	st := p.Stats()
	if st.Upgrades != 1 {
		t.Fatalf("upgrades=%d, want 1", st.Upgrades)
	}
	if st.Computations != 2 {
		t.Fatalf("computations=%d, want 2 (k=5 build, k=12 rebuild)", st.Computations)
	}
	if st.KMax != 12 {
		t.Fatalf("kmax=%d, want 12", st.KMax)
	}
	checkPrefix(t, p, v, 5) // still a prefix of the upgraded entry
}

// TestPlaneDisabled: a nil plane and degenerate queries decline (ok=false)
// without error, sending callers to their private fallback path.
func TestPlaneDisabled(t *testing.T) {
	ds := tieDataset(t, "disabled", 64, 3, 0, 6)
	v := ds.FullView()
	var nilPlane *neighbors.Plane
	if _, _, _, _, ok, err := nilPlane.AllKNN(context.Background(), v, 5, 1); ok || err != nil {
		t.Fatalf("nil plane: ok=%v err=%v, want declined", ok, err)
	}
	nilPlane.RegisterK(5) // must not panic
	if st := nilPlane.Stats(); st.Queries != 0 {
		t.Fatalf("nil plane stats: %+v", st)
	}
	p := neighbors.NewPlane(0)
	if _, _, _, _, ok, _ := p.AllKNN(context.Background(), v, 0, 1); ok {
		t.Fatal("k=0 accepted")
	}
}

// TestPlaneWarm: prefetching views makes later detector-sized queries pure
// hits, and warming is idempotent.
func TestPlaneWarm(t *testing.T) {
	ds := tieDataset(t, "warm", 128, 4, 0, 7)
	var srcs []neighbors.ColumnSource
	for f := 0; f < ds.D(); f++ {
		srcs = append(srcs, ds.View(subspace.New(f)))
		for g := f + 1; g < ds.D(); g++ {
			srcs = append(srcs, ds.View(subspace.New(f, g)))
		}
	}
	p := neighbors.NewPlane(0)
	p.RegisterK(15)
	if err := p.Warm(context.Background(), srcs, 2); err != nil {
		t.Fatal(err)
	}
	warmed := p.Stats().Computations
	if warmed != len(srcs) {
		t.Fatalf("warm computed %d entries, want %d", warmed, len(srcs))
	}
	if err := p.Warm(context.Background(), srcs, 2); err != nil {
		t.Fatal(err)
	}
	for _, src := range srcs {
		v := src.(*dataset.View)
		checkPrefix(t, p, v, 10)
	}
	if got := p.Stats().Computations; got != warmed {
		t.Fatalf("queries after warm recomputed: %d computations, want %d", got, warmed)
	}
}

// Benchmarks regenerating (in miniature) every table and figure of the
// paper's evaluation, plus ablation benches for the design choices called
// out in DESIGN.md. The full-size experiment harness is cmd/anexbench;
// these benches exercise the same code paths at benchmark-friendly sizes
// and report MAP as a custom metric where effectiveness matters.
package anex_test

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"anex"
	"anex/internal/detector"
	"anex/internal/experiments"
	"anex/internal/explain"
	"anex/internal/neighbors"
	"anex/internal/pipeline"
	"anex/internal/subspace"
	"anex/internal/summarize"
	"anex/internal/synth"
)

var bctx = context.Background()

// benchDataset returns a 1000×10 view-friendly dataset with planted 2d/3d
// subspace outliers — the sample size of the paper's timing experiments.
func benchDataset(b *testing.B, n, d int) (*anex.Dataset, *anex.GroundTruth) {
	b.Helper()
	ds, gt, err := anex.GenerateSubspaceOutliers(anex.SubspaceOutlierConfig{
		Name:                "bench",
		TotalDims:           d,
		SubspaceDims:        []int{2, 3},
		N:                   n,
		OutliersPerSubspace: 5,
		Seed:                1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ds, gt
}

// BenchmarkDetectorPerSubspace reproduces the Section 4.3 measurement "to
// score a single subspace LOF needed 0.05, iForest 0.2 and Fast ABOD 2
// seconds approximately" — a 1000-point 3d view per detector.
func BenchmarkDetectorPerSubspace(b *testing.B) {
	b.ReportAllocs()
	ds, _ := benchDataset(b, 1000, 10)
	view := ds.View(anex.NewSubspace(2, 3, 4))
	dets := []anex.Detector{
		anex.NewLOF(15),
		anex.NewFastABOD(10),
		anex.NewIsolationForest(1),
	}
	for _, det := range dets {
		b.Run(det.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				det.Scores(bctx, view)
			}
		})
	}
}

// BenchmarkTable1 regenerates the dataset-characteristics table from a
// freshly generated miniature testbed.
func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		td, err := synth.BuildSynthetic(synth.SubspaceConfig{
			Name: "t1", TotalDims: 10, SubspaceDims: []int{2, 3},
			N: 300, OutliersPerSubspace: 5, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		s := &experiments.Session{
			Cfg: experiments.Config{Scale: synth.ScaleSmall, Seed: int64(i)},
			TB:  &experiments.Testbed{Synthetic: []synth.TestbedDataset{td}},
		}
		if tbl := s.Table1(); len(tbl.Rows) != 1 {
			b.Fatal("table 1 malformed")
		}
	}
}

// BenchmarkFigure8 regenerates the relevant-subspace-dimensionality figure.
func BenchmarkFigure8(b *testing.B) {
	b.ReportAllocs()
	td, err := synth.BuildSynthetic(synth.SubspaceConfig{
		Name: "f8", TotalDims: 12, SubspaceDims: []int{2, 3, 4},
		N: 300, OutliersPerSubspace: 5, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	s := &experiments.Session{
		Cfg: experiments.Config{Scale: synth.ScaleSmall},
		TB:  &experiments.Testbed{Synthetic: []synth.TestbedDataset{td}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.Figure8(); len(tbl.Rows) != 1 {
			b.Fatal("figure 8 malformed")
		}
	}
}

// figure9Cell runs one (explainer, detector) cell of Figure 9 and reports
// MAP alongside the timing. Every iteration is a COLD cell: a fresh
// detector with a fresh score memo and a fresh private neighbourhood
// plane, so ns/op measures the paper's per-cell cost and is independent
// of -benchtime. (The previous shape built the caches once outside the
// loop, so ns/op was really first-iteration cost amortised over b.N.)
func figure9Cell(b *testing.B, mk func(det anex.Detector) anex.PointExplainer, mkDet func() anex.Detector) {
	ds, gt := benchDataset(b, 300, 10)
	var mapSum float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det := mkDet()
		if ns, ok := det.(interface {
			SetNeighbors(*anex.NeighborhoodPlane)
		}); ok {
			ns.SetNeighbors(anex.NewNeighborhoodPlane(0))
		}
		expl := mk(anex.CachedDetector(det))
		res := anex.ExplainOutliers(bctx, ds, gt, det.Name(), expl, 2)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		mapSum += res.MAP
	}
	b.ReportMetric(mapSum/float64(b.N), "MAP")
}

// BenchmarkFigure9 regenerates Figure 9 cells: both point explainers with
// each detector on a planted-subspace dataset.
func BenchmarkFigure9(b *testing.B) {
	b.ReportAllocs()
	beam := func(det anex.Detector) anex.PointExplainer {
		e := anex.NewBeamFX(det)
		e.Width = 30
		e.TopK = 30
		return e
	}
	refout := func(det anex.Detector) anex.PointExplainer {
		e := anex.NewRefOut(det, 1)
		e.PoolSize = 60
		e.Width = 30
		e.TopK = 30
		return e
	}
	b.Run("Beam/LOF", func(b *testing.B) {
		figure9Cell(b, beam, func() anex.Detector { return anex.NewLOF(15) })
	})
	b.Run("Beam/iForest", func(b *testing.B) {
		b.ReportAllocs()
		figure9Cell(b, beam, func() anex.Detector {
			return &anex.IsolationForest{Trees: 50, Subsample: 128, Repetitions: 3}
		})
	})
	b.Run("RefOut/LOF", func(b *testing.B) {
		figure9Cell(b, refout, func() anex.Detector { return anex.NewLOF(15) })
	})
	b.Run("RefOut/FastABOD", func(b *testing.B) {
		figure9Cell(b, refout, func() anex.Detector { return anex.NewFastABOD(10) })
	})
}

// figure10Cell runs one (summarizer, detector) cell of Figure 10. Cold per
// iteration — fresh detector, score memo and private neighbourhood plane —
// for the same benchtime-independence reason as figure9Cell.
func figure10Cell(b *testing.B, mk func(det anex.Detector) anex.Summarizer, mkDet func() anex.Detector) {
	ds, gt := benchDataset(b, 300, 10)
	var mapSum float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det := mkDet()
		if ns, ok := det.(interface {
			SetNeighbors(*anex.NeighborhoodPlane)
		}); ok {
			ns.SetNeighbors(anex.NewNeighborhoodPlane(0))
		}
		sum := mk(anex.CachedDetector(det))
		res := anex.SummarizeOutliers(bctx, ds, gt, det.Name(), sum, 2)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		mapSum += res.MAP
	}
	b.ReportMetric(mapSum/float64(b.N), "MAP")
}

// BenchmarkFigure10 regenerates Figure 10 cells: both summarizers with LOF
// and FastABOD.
func BenchmarkFigure10(b *testing.B) {
	b.ReportAllocs()
	lookout := func(det anex.Detector) anex.Summarizer {
		s := anex.NewLookOut(det)
		s.Budget = 30
		return s
	}
	hics := func(det anex.Detector) anex.Summarizer {
		s := anex.NewHiCSFX(det, 1)
		s.MCIterations = 40
		s.CandidateCutoff = 100
		s.TopK = 30
		return s
	}
	b.Run("LookOut/LOF", func(b *testing.B) {
		figure10Cell(b, lookout, func() anex.Detector { return anex.NewLOF(15) })
	})
	b.Run("LookOut/FastABOD", func(b *testing.B) {
		figure10Cell(b, lookout, func() anex.Detector { return anex.NewFastABOD(10) })
	})
	b.Run("HiCS/LOF", func(b *testing.B) {
		figure10Cell(b, hics, func() anex.Detector { return anex.NewLOF(15) })
	})
	b.Run("HiCS/FastABOD", func(b *testing.B) {
		figure10Cell(b, hics, func() anex.Detector { return anex.NewFastABOD(10) })
	})
}

// BenchmarkFigure11 measures the runtime of each pipeline family end to end
// — the quantity Figure 11 plots — on a fixed dataset with uncached
// detectors, explaining a bounded set of points. Each iteration gets a
// fresh LOF on a fresh private neighbourhood plane so "uncached" stays
// true across iterations.
func BenchmarkFigure11(b *testing.B) {
	b.ReportAllocs()
	ds, gt := benchDataset(b, 300, 10)
	points := gt.Outliers()
	if len(points) > 3 {
		points = points[:3]
	}
	sub := make(map[int][]subspace.Subspace, len(points))
	for _, p := range points {
		sub[p] = gt.RelevantFor(p)
	}
	small := anex.NewGroundTruth(sub)
	coldLOF := func() *anex.LOF {
		l := anex.NewLOF(15)
		l.SetNeighbors(anex.NewNeighborhoodPlane(0))
		return l
	}

	b.Run("Beam/LOF", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := anex.NewBeamFX(coldLOF())
			e.Width = 30
			if res := anex.ExplainOutliers(bctx, ds, small, "LOF", e, 2); res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	})
	b.Run("RefOut/LOF", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := anex.NewRefOut(coldLOF(), 1)
			e.PoolSize = 60
			if res := anex.ExplainOutliers(bctx, ds, small, "LOF", e, 2); res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	})
	b.Run("LookOut/LOF", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := anex.NewLookOut(coldLOF())
			s.Budget = 30
			if res := anex.SummarizeOutliers(bctx, ds, small, "LOF", s, 2); res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	})
	b.Run("HiCS/LOF", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := anex.NewHiCSFX(coldLOF(), 1)
			s.MCIterations = 40
			if res := anex.SummarizeOutliers(bctx, ds, small, "LOF", s, 2); res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	})
}

// BenchmarkTable2 measures the trade-off aggregation over precomputed
// pipeline results (the pipelines themselves are benched above).
func BenchmarkTable2(b *testing.B) {
	b.ReportAllocs()
	td, err := synth.BuildSynthetic(synth.SubspaceConfig{
		Name: "t2", TotalDims: 8, SubspaceDims: []int{2}, N: 200,
		OutliersPerSubspace: 4, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	rw, err := synth.BuildRealWorld(bctx,
		synth.FullSpaceConfig{Name: "t2-real", N: 100, D: 6, NumOutliers: 8, Seed: 2},
		[]int{2}, detector.NewLOF(detector.DefaultLOFK))
	if err != nil {
		b.Fatal(err)
	}
	s := &experiments.Session{
		Cfg: experiments.Config{Scale: synth.ScaleSmall, Seed: 1},
		TB: &experiments.Testbed{
			Synthetic: []synth.TestbedDataset{td},
			RealWorld: []synth.TestbedDataset{rw},
		},
	}
	s.PointResults(bctx) // populate caches outside the timed loop
	s.SummaryResults(bctx)
	s.TimingResults(bctx)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tbl := s.Table2(bctx); len(tbl.Rows) == 0 {
			b.Fatal("table 2 empty")
		}
	}
}

// --- Ablation benches (design decisions from DESIGN.md) ---

// BenchmarkAblationRawVsZScore compares Beam's effectiveness with the
// paper's Z-score standardisation against raw detector scores. The MAP
// metric is the point: raw scores carry dimensionality bias.
func BenchmarkAblationRawVsZScore(b *testing.B) {
	b.ReportAllocs()
	ds, gt := benchDataset(b, 300, 10)
	run := func(b *testing.B, score explain.ScoreFunc) {
		det := anex.CachedDetector(anex.NewLOF(15))
		e := &explain.Beam{Detector: det, Width: 30, TopK: 30, FixedDim: true, Score: score}
		var mapSum float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := pipeline.RunPointExplanation(bctx, ds, gt, pipeline.PointPipeline{Detector: "LOF", Explainer: e}, 3)
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			mapSum += res.MAP
		}
		b.ReportMetric(mapSum/float64(b.N), "MAP")
	}
	b.Run("zscore", func(b *testing.B) { run(b, explain.ZScored()) })
	b.Run("raw", func(b *testing.B) { run(b, explain.Raw()) })
}

// BenchmarkKNNBruteVsKDTree quantifies the KD-tree-vs-brute-force crossover
// on the low-dimensional views explainers query.
func BenchmarkKNNBruteVsKDTree(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	for _, dim := range []int{2, 4, 8, 16} {
		points := make([][]float64, 1000)
		for i := range points {
			p := make([]float64, dim)
			for j := range p {
				p[j] = rng.Float64()
			}
			points[i] = p
		}
		b.Run("brute/"+itoa(dim)+"d", func(b *testing.B) {
			b.ReportAllocs()
			ix := neighbors.NewBruteForce(points)
			for i := 0; i < b.N; i++ {
				neighbors.AllKNN(ix, 15)
			}
		})
		b.Run("kdtree/"+itoa(dim)+"d", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tree := neighbors.NewKDTree(points)
				neighbors.AllKNN(tree, 15)
			}
		})
	}
}

// BenchmarkFigure9KNNPrune is the landmark-pruned candidate tier's
// acceptance workload: the complete k=15 neighbourhood structure of the
// paper's 1000-point 20d Figure-9 dataset — the widest, most expensive
// views the kNN detectors score — with the tier on versus off. Both arms
// are WARM-INDEX (built once outside the timer): the neighbourhood plane
// builds each index once per (dataset, subspace) and answers every
// detector and request from it, so steady-state query cost is what the
// tier actually changes; a cold arm would mostly measure the one-off
// landmark selection the plane amortises away. scripts/check.sh gates on
// the pruned/unpruned ratio of this benchmark (≤ 0.75), which
// self-normalises against host-load swings. The worker budget follows the
// live GOMAXPROCS so a `go test -cpu 1,2,4` sweep measures real scaling;
// the default run is the same single-worker loop the gate times.
func BenchmarkFigure9KNNPrune(b *testing.B) {
	ds, _ := benchDataset(b, 1000, 20)
	points := ds.FullView().Points()
	workers := runtime.GOMAXPROCS(0)
	run := func(b *testing.B, ix neighbors.Index) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := neighbors.AllKNNFlat(bctx, ix, 15, workers); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("pruned", func(b *testing.B) { run(b, neighbors.NewLandmarkIndex(points, 0)) })
	b.Run("unpruned", func(b *testing.B) { run(b, neighbors.NewBruteForce(points)) })
}

// BenchmarkFigure9KNNQuant is the quantized prefilter's acceptance
// workload: the same warm-index Figure-9 neighbourhood structure as
// BenchmarkFigure9KNNPrune, but both arms run the LANDMARK tier — one with
// the code-bound tile pass under the band scan, one going straight to the
// exact kernel — so the ratio isolates exactly what the prefilter adds on
// top of the tier it composes with. scripts/check.sh gates on the
// quant/noquant ratio (≤ 0.85, best of three same-process rounds).
func BenchmarkFigure9KNNQuant(b *testing.B) {
	ds, _ := benchDataset(b, 1000, 20)
	points := ds.FullView().Points()
	defer neighbors.SetPruneConfig(neighbors.PruneConfig{})
	run := func(b *testing.B, ix neighbors.Index) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := neighbors.AllKNNFlat(bctx, ix, 15, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("quant", func(b *testing.B) {
		neighbors.SetPruneConfig(neighbors.PruneConfig{})
		run(b, neighbors.NewLandmarkIndex(points, 0))
	})
	b.Run("noquant", func(b *testing.B) {
		neighbors.SetPruneConfig(neighbors.PruneConfig{NoQuant: true})
		run(b, neighbors.NewLandmarkIndex(points, 0))
	})
}

// BenchmarkAblationHiCSTest compares the Welch and Kolmogorov–Smirnov
// contrast tests inside HiCS.
func BenchmarkAblationHiCSTest(b *testing.B) {
	b.ReportAllocs()
	ds, gt := benchDataset(b, 400, 10)
	run := func(b *testing.B, test summarize.ContrastTest) {
		det := anex.CachedDetector(anex.NewLOF(15))
		h := &summarize.HiCS{
			Detector: det, MCIterations: 40, CandidateCutoff: 100,
			Test: test, FixedDim: true, TopK: 30, Seed: 1,
		}
		var mapSum float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := pipeline.RunSummarization(bctx, ds, gt, pipeline.SummaryPipeline{Detector: "LOF", Summarizer: h}, 2)
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			mapSum += res.MAP
		}
		b.ReportMetric(mapSum/float64(b.N), "MAP")
	}
	b.Run("welch", func(b *testing.B) { run(b, summarize.WelchTest) })
	b.Run("ks", func(b *testing.B) { run(b, summarize.KSTest) })
}

// BenchmarkAblationIForestAveraging measures the cost of the paper's
// 10-repetition iForest averaging against a single forest.
func BenchmarkAblationIForestAveraging(b *testing.B) {
	b.ReportAllocs()
	ds, _ := benchDataset(b, 500, 10)
	view := ds.View(anex.NewSubspace(0, 1, 2))
	b.Run("reps=1", func(b *testing.B) {
		b.ReportAllocs()
		f := &anex.IsolationForest{Trees: 100, Subsample: 256, Repetitions: 1, Seed: 1}
		for i := 0; i < b.N; i++ {
			f.Scores(bctx, view)
		}
	})
	b.Run("reps=10", func(b *testing.B) {
		b.ReportAllocs()
		f := &anex.IsolationForest{Trees: 100, Subsample: 256, Repetitions: 10, Seed: 1}
		for i := 0; i < b.N; i++ {
			f.Scores(bctx, view)
		}
	})
}

// BenchmarkContrastVsLOF reproduces the Section 4.3 insight that, at
// n ≈ 1000, HiCS's Monte-Carlo statistical test costs more per subspace
// than LOF's distance computation.
func BenchmarkContrastVsLOF(b *testing.B) {
	b.ReportAllocs()
	ds, _ := benchDataset(b, 1000, 10)
	// Same unit of work for both: assess every 2d subspace of the dataset
	// once — HiCS by Monte-Carlo contrast, LOF by outlyingness scoring.
	b.Run("hics-contrast", func(b *testing.B) {
		b.ReportAllocs()
		h := &summarize.HiCS{Detector: anex.NewLOF(15), MCIterations: 100, Seed: 1, FixedDim: true}
		for i := 0; i < b.N; i++ {
			if _, err := h.SearchContrastSubspaces(bctx, ds, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lof-score", func(b *testing.B) {
		b.ReportAllocs()
		lof := anex.NewLOF(15)
		want := subspace.Count(ds.D(), 2)
		for i := 0; i < b.N; i++ {
			e := subspace.NewEnumerator(ds.D(), 2)
			n := int64(0)
			for s := e.Next(); s != nil; s = e.Next() {
				lof.Scores(bctx, ds.View(s))
				n++
			}
			if n != want {
				b.Fatal("enumeration mismatch")
			}
		}
	})
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkSurrogateVsBeamPerPoint contrasts the cost of one predictive
// explanation (surrogate signature) with one descriptive explanation (Beam
// subspace search) — the trade-off the paper's conclusions propose.
func BenchmarkSurrogateVsBeamPerPoint(b *testing.B) {
	b.ReportAllocs()
	ds, gt := benchDataset(b, 300, 10)
	p := gt.Outliers()[0]
	row := make([]float64, ds.D())
	b.Run("surrogate-signature", func(b *testing.B) {
		b.ReportAllocs()
		forest, _, err := anex.ExplainDetectorWithSurrogate(bctx, ds, anex.NewLOF(15), anex.SurrogateForestOptions{
			Trees: 20, Seed: 1, Tree: anex.SurrogateTreeOptions{MaxDepth: 5},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			forest.Signature(ds.Row(p, row), 3)
		}
	})
	b.Run("beam-search", func(b *testing.B) {
		b.ReportAllocs()
		beam := anex.NewBeamFX(anex.NewLOF(15))
		beam.Width = 30
		for i := 0; i < b.N; i++ {
			if _, err := beam.ExplainPoint(bctx, ds, p, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("surrogate-fit", func(b *testing.B) {
		b.ReportAllocs()
		scores, err := anex.NewLOF(15).Scores(bctx, ds.FullView())
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := anex.FitSurrogateForest(ds, scores, anex.SurrogateForestOptions{
				Trees: 20, Seed: 1, Tree: anex.SurrogateTreeOptions{MaxDepth: 5},
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

module anex

go 1.22

package anex_test

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"anex"
)

// exampleDataset builds a deterministic dataset with two clusters on the
// (F0, F1) diagonal, two noise features, and one planted anomaly at index 0
// breaking the diagonal coupling.
func exampleDataset() *anex.Dataset {
	rng := rand.New(rand.NewSource(7))
	rows := make([][]float64, 240)
	for i := range rows {
		base := 0.25
		if rng.Intn(2) == 1 {
			base = 0.75
		}
		rows[i] = []float64{
			base + rng.NormFloat64()*0.03,
			base + rng.NormFloat64()*0.03,
			rng.Float64(),
			rng.Float64(),
		}
	}
	rows[0] = []float64{0.25, 0.75, 0.5, 0.5}
	ds, err := anex.FromRows("example", rows, []string{"temp", "pressure", "hum", "wind"})
	if err != nil {
		log.Fatal(err)
	}
	return ds
}

// Explaining one point: which feature pair makes point 0 anomalous?
func ExampleBeam_ExplainPoint() {
	ds := exampleDataset()
	beam := anex.NewBeamFX(anex.NewLOF(15))
	explanations, err := beam.ExplainPoint(context.Background(), ds, 0, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(explanations[0].Subspace)
	// Output: {F0, F1}
}

// Summarizing several points with one ranked list of subspaces.
func ExampleLookOut_Summarize() {
	ds := exampleDataset()
	lookout := anex.NewLookOut(anex.NewLOF(15))
	lookout.Budget = 3
	summary, err := lookout.Summarize(context.Background(), ds, []int{0}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(summary[0].Subspace)
	// Output: {F0, F1}
}

// Evaluating a ranked explanation against ground truth, as the paper does.
func ExampleAveragePrecision() {
	relevant := []anex.Subspace{anex.NewSubspace(0, 1)}
	returned := []anex.Subspace{
		anex.NewSubspace(2, 3), // miss at rank 1
		anex.NewSubspace(0, 1), // hit at rank 2
	}
	fmt.Printf("%.2f\n", anex.AveragePrecision(returned, relevant))
	// Output: 0.50
}

// Canonical subspaces: construction, keys, set operations.
func ExampleSubspace() {
	s := anex.NewSubspace(4, 1, 4)
	fmt.Println(s, s.Key(), s.Contains(1))
	// Output: {F1, F4} 1,4 true
}

#!/bin/sh
# Runs the key hot-path benchmarks with -benchmem and emits a
# machine-readable JSON snapshot (ns/op, B/op, allocs/op per benchmark),
# the perf trajectory artefact the PR acceptance criteria compare against.
#
# Usage: scripts/bench.sh [output.json]
#
# Without an argument the output is one past the highest numbered snapshot
# already in results/ (BENCH_9.json present -> BENCH_10.json), so the
# trajectory grows without editing this script each PR — the stale
# hardcoded default bit two PRs in a row.
#
# Snapshot shape: a "host" provenance block (goos/goarch/cpu model, nproc,
# Go version, UTC date) plus a "benchmarks" object. Benchmark keys KEEP the
# Go -cpu/GOMAXPROCS name suffix (…-4), and every entry carries an explicit
# "gomaxprocs" field (the suffix, or 1 when Go omits it) — earlier
# snapshots stripped the suffix, which both lost the provenance of
# multi-core runs and would collide the -cpu sweep arms below into one key.
set -eu

cd "$(dirname "$0")/.."

if [ $# -ge 1 ]; then
    out="$1"
else
    last="$(ls results/BENCH_*.json 2>/dev/null |
        sed -n 's/.*BENCH_\([0-9][0-9]*\)\.json$/\1/p' | sort -n | tail -1)"
    out="results/BENCH_$((${last:-0} + 1)).json"
fi
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# Key benchmarks, lowest layer first: the exact-distance kernel sweep
# (full vs early-exit accumulation across view widths), kNN substrate
# (heap drain + the flat builder the plane serves), per-subspace detector
# scoring + the cache-hit path, the parallel grid plus the
# shared-vs-unshared plane mini-grid (BenchmarkRunGridKNN, the PR-5
# acceptance workload), the landmark-pruned versus exhaustive kNN arms on
# the Figure-9 reference workload (BenchmarkFigure9KNNPrune, the PR-8
# acceptance workload), the quantized-prefilter versus plain-band arms on
# the same workload (BenchmarkFigure9KNNQuant, the PR-10 acceptance
# workload), and the Beam/LOF pipeline cell (the paper's Figure 9 hot spot
# and the acceptance metric).
#
# The -cpu 1,2,4 sweeps are the first multi-core baselines: AllKNN, the
# prune arms, and the kNN grid parallelise over workers=GOMAXPROCS, so
# their scaling across the sweep is the worker-scaling record
# results/BENCH_NOTES.md tabulates. On a 1-vCPU box the >1 arms measure
# oversubscribed scheduling, not parallel speedup — the per-entry
# gomaxprocs field is what keeps those rows honest.
go test -run '^$' -bench 'BenchmarkSquaredEuclideanWithin' -benchmem -benchtime=200x ./internal/neighbors >>"$raw"
go test -run '^$' -bench 'BenchmarkAllKNN' -benchmem -benchtime=20x -cpu 1,2,4 ./internal/neighbors >>"$raw"
go test -run '^$' -bench 'BenchmarkDetectors1000x3|BenchmarkCachedDetectorHit' -benchmem -benchtime=10x ./internal/detector >>"$raw"
go test -run '^$' -bench 'BenchmarkRunGrid$' -benchmem -benchtime=2x ./internal/pipeline >>"$raw"
go test -run '^$' -bench 'BenchmarkRunGridKNN$' -benchmem -benchtime=2x -cpu 1,2,4 ./internal/pipeline >>"$raw"
go test -run '^$' -bench 'BenchmarkFigure9KNNPrune$' -benchmem -benchtime=30x -cpu 1,2,4 . >>"$raw"
go test -run '^$' -bench 'BenchmarkFigure9KNNQuant$' -benchmem -benchtime=30x . >>"$raw"
go test -run '^$' -bench 'BenchmarkFigure9/(Beam|RefOut)/LOF' -benchmem -benchtime=20x . >>"$raw"
# Stream arm: steady-state sliding-window evaluation on the reference
# workload (W=256, stride=64, 20d, LOF k=15), incremental engine vs cold
# rebuild — the PR-9 acceptance pair whose ratio check.sh gates at ≤ 0.6.
go test -run '^$' -bench 'BenchmarkStreamWindow' -benchmem -benchtime=100x ./internal/stream >>"$raw"

awk -v nproc="$(nproc 2>/dev/null || echo 0)" \
    -v gover="$(go env GOVERSION)" \
    -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
# Host provenance comes from the benchmark output itself (every go test
# invocation prints goos/goarch/cpu); the first sighting wins.
$1 == "goos:"   && goos == ""   { goos = $2 }
$1 == "goarch:" && goarch == "" { goarch = $2 }
/^cpu: / && cpu == "" { cpu = substr($0, 6) }
# The header must precede the entries, and this rule must precede the
# entry rule below (awk applies rules in order within one record): host
# fields are parsed from the first invocation block, printed once the
# first benchmark line arrives.
/^Benchmark/ && !headered {
    headered = 1
    printf("  \"host\": {\"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\", \"nproc\": %d, \"go\": \"%s\", \"date\": \"%s\"},\n",
           goos, goarch, cpu, nproc, gover, date)
    printf("  \"benchmarks\": {\n")
}
/^Benchmark/ {
    name = $1
    procs = 1
    if (match(name, /-[0-9]+$/)) procs = substr(name, RSTART + 1)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns     = $(i-1)
        if ($i == "B/op")      bytes  = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    if (name in seen) next   # keep the first sighting of a repeated key
    seen[name] = 1
    if (count++) printf(",\n")
    printf("    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"gomaxprocs\": %d}",
           name, ns, bytes, allocs, procs)
}
BEGIN { printf("{\n") }
END   { printf("\n  }\n}\n") }
' "$raw" >"$out"

echo "wrote $out"

#!/bin/sh
# Runs the key hot-path benchmarks with -benchmem and emits a
# machine-readable JSON snapshot (ns/op, B/op, allocs/op per benchmark),
# the perf trajectory artefact the PR acceptance criteria compare against.
#
# Usage: scripts/bench.sh [output.json]    (default results/BENCH_9.json)
set -eu

cd "$(dirname "$0")/.."

out="${1:-results/BENCH_9.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# Key benchmarks, lowest layer first: kNN substrate (heap drain + the flat
# builder the plane serves), per-subspace detector scoring + the cache-hit
# path, the parallel grid plus the shared-vs-unshared plane mini-grid
# (BenchmarkRunGridKNN, the PR-5 acceptance workload), the landmark-pruned
# versus exhaustive kNN arms on the Figure-9 reference workload
# (BenchmarkFigure9KNNPrune, the PR-8 acceptance workload), and the
# Beam/LOF pipeline cell (the paper's Figure 9 hot spot and the
# acceptance metric).
go test -run '^$' -bench 'BenchmarkAllKNN' -benchmem -benchtime=20x ./internal/neighbors >>"$raw"
go test -run '^$' -bench 'BenchmarkDetectors1000x3|BenchmarkCachedDetectorHit' -benchmem -benchtime=10x ./internal/detector >>"$raw"
go test -run '^$' -bench 'BenchmarkRunGrid$' -benchmem -benchtime=2x ./internal/pipeline >>"$raw"
go test -run '^$' -bench 'BenchmarkRunGridKNN$' -benchmem -benchtime=2x ./internal/pipeline >>"$raw"
go test -run '^$' -bench 'BenchmarkFigure9KNNPrune$' -benchmem -benchtime=30x . >>"$raw"
go test -run '^$' -bench 'BenchmarkFigure9/(Beam|RefOut)/LOF' -benchmem -benchtime=20x . >>"$raw"
# Stream arm: steady-state sliding-window evaluation on the reference
# workload (W=256, stride=64, 20d, LOF k=15), incremental engine vs cold
# rebuild — the PR-9 acceptance pair whose ratio check.sh gates at ≤ 0.6.
go test -run '^$' -bench 'BenchmarkStreamWindow' -benchmem -benchtime=100x ./internal/stream >>"$raw"

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns     = $(i-1)
        if ($i == "B/op")      bytes  = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    if (count++) printf(",\n")
    printf("  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, bytes, allocs)
}
BEGIN { printf("{\n") }
END   { printf("\n}\n") }
' "$raw" >"$out"

echo "wrote $out"

#!/bin/sh
# Tier-1 gate: vet, build, and the full test suite under the race detector.
# Every concurrent path in the repo (singleflight cache, parallel inner
# loops, the grid worker pool) is exercised by tests, so -race failing here
# means a real data race, not flakiness.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...

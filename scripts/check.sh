#!/bin/sh
# Tier-1 gate: vet, build, and the full test suite under the race detector.
# Every concurrent path in the repo (singleflight cache, parallel inner
# loops, the grid worker pool) is exercised by tests, so -race failing here
# means a real data race, not flakiness.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...

# Short fuzz smoke on the CSV parser: the only loader of external bytes.
# 10 seconds is enough to shake out parser regressions without slowing the
# gate; a reproducing input would land in internal/dataset/testdata/fuzz.
go test ./internal/dataset -run FuzzReadCSV -fuzz=FuzzReadCSV -fuzztime=10s

# WAL decoder fuzz smoke: recovery parses whatever bytes a crash left on
# disk, so the decoder must never panic, must truncate at the longest
# valid frame prefix, and must round-trip what it accepts bit-identically.
go test ./internal/durable -run FuzzWALDecode -fuzz=FuzzWALDecode -fuzztime=10s

# Quant-bound fuzz smoke: the quantized prefilter may only ever reject a
# candidate whose true squared distance exceeds the bound — 10 seconds of
# random shapes/values asserting the SSE2 kernel equals the portable
# reference and the decoded bound never exceeds the exact distance. A
# violation here is a wrong-answer bug (a neighbour silently dropped), so
# it gates alongside the parser fuzzers.
go test ./internal/neighbors -run FuzzQuantBoundSafe -fuzz=FuzzQuantBoundSafe -fuzztime=10s

# Crash drill: for every durable fault site and hit number, die there,
# recover, and require the recovered registry to equal the pre- or
# post-write state — run explicitly (and uncached) so the schedule cannot
# be pruned out of the -race sweep above.
go test -race -count=1 -run 'TestCrashSchedule|TestCrashDuringRecovery' ./internal/durable

# Benchmark smoke: one iteration of the grid benchmark proves the bench
# harness still compiles and runs end to end (full numbers come from
# scripts/bench.sh, which this deliberately does not replicate).
go test -run '^$' -bench 'BenchmarkRunGrid/workers=4' -benchtime=1x ./internal/pipeline

# Figure-9 Beam/LOF perf gate: fail if the acceptance metric regresses >10%
# versus the committed baseline (results/BENCH_10.json — the PR-10 snapshot,
# the first with per-entry gomaxprocs provenance and -cpu sweep arms;
# previously rebased from BENCH_5 to
# BENCH_8 because the box's RELATIVE speeds drifted between recordings:
# the brute-force 2d reference loop now runs ~25-30% faster relative to
# Beam/LOF than when BENCH_5 was taken, with both code paths untouched —
# measured on the pre-PR-8 tree, which failed the BENCH_5-based gate at
# ratio 2.88 vs allowed 2.33. The ratio methodology cancels uniform
# host-load swings, not microarchitectural shifts that move a pure
# distance loop and a GC-heavy pipeline differently). The recording box is
# a shared single-core VM whose effective speed swings ±20-40% with host
# load (see results/BENCH_NOTES.md), so raw ns/op from different moments are
# not comparable. Interference slows all code about equally, so each round
# measures Beam/LOF AND a fixed reference workload (brute-force 2d kNN, a
# pure distance loop untouched by pipeline changes) back to back and gates
# on their RATIO against the baseline's ratio: machine speed cancels, a
# structural regression of Beam/LOF does not. The best of three rounds is
# compared — noise only ever inflates a round, so the minimum is the honest
# estimate, and a real >10% regression still cannot pass.
# Baseline lookup. BENCH_10+ snapshots keep the Go -cpu name suffix in
# their keys (…-4), so the key is matched EXACTLY including the closing
# quote-colon: "Name": selects the unsuffixed GOMAXPROCS=1 entry and
# cannot also pick up its -2/-4 sweep siblings.
getbase() {
    awk -v pat="\"$1\": " 'index($0, pat) {
        if (match($0, /"ns_per_op": [0-9.]+/)) print substr($0, RSTART+13, RLENGTH-13)
    }' results/BENCH_10.json
}
getns() {
    awk -v pat="$1" '$1 ~ pat { for (i = 2; i <= NF; i++) if ($i == "ns/op") print $(i-1) }'
}
beam_base="$(getbase 'BenchmarkFigure9/Beam/LOF')"
ref_base="$(getbase 'BenchmarkAllKNN/brute/2d')"
[ -n "$beam_base" ] && [ -n "$ref_base" ]
best=""
for i in 1 2 3; do
    # Both sides run at 20x — the same benchtime bench.sh records them
    # at, and enough samples (~100-200ms each) that a single descheduling
    # blip cannot swing either side of the ratio by itself. (At the old
    # 5x, single rounds of each side were observed to jitter ±25%.)
    beam="$(go test -run '^$' -bench 'BenchmarkFigure9/Beam/LOF$' -benchtime=20x . | getns '^BenchmarkFigure9')"
    ref="$(go test -run '^$' -bench 'BenchmarkAllKNN/brute/2d$' -benchtime=20x ./internal/neighbors | getns '^BenchmarkAllKNN')"
    [ -n "$beam" ] && [ -n "$ref" ]
    ratio="$(awk -v b="$beam" -v r="$ref" 'BEGIN { printf("%.6f", b / r) }')"
    echo "round $i: beam ${beam} ns/op, ref ${ref} ns/op, ratio ${ratio}"
    if [ -z "$best" ] || awk -v a="$ratio" -v b="$best" 'BEGIN { exit !(a < b) }'; then
        best="$ratio"
    fi
done
echo "figure9 Beam/LOF: best ratio ${best}, baseline ratio $(awk -v b="$beam_base" -v r="$ref_base" 'BEGIN { printf("%.6f", b / r) }')"
awk -v ratio="$best" -v bb="$beam_base" -v rb="$ref_base" 'BEGIN {
    if (ratio > (bb / rb) * 1.10) {
        printf("FAIL: Beam/LOF regressed: ratio %.4f > baseline %.4f * 1.10\n", ratio, bb / rb)
        exit 1
    }
}'

# RunGrid mini-workload perf gate: BenchmarkRunGridKNN runs the Figure-9
# mini-grid with all three kNN detectors twice in the same process — once
# with the detectors sharing one neighbourhood plane, once with a private
# plane each — so the shared/unshared ratio is self-normalising: host-load
# swings hit both arms alike and cancel. The plane's whole point is cutting
# duplicated kNN work, so gate on shared ≤ 0.75× unshared (the ≥25%
# wall-clock reduction the PR-5 acceptance criteria demand). Best of two
# rounds, same rationale as above: noise only ever shrinks the gap.
bestgrid=""
for i in 1 2; do
    gridout="$(go test -run '^$' -bench 'BenchmarkRunGridKNN$' -benchtime=2x ./internal/pipeline)"
    shared="$(echo "$gridout" | getns '^BenchmarkRunGridKNN/shared')"
    unshared="$(echo "$gridout" | getns '^BenchmarkRunGridKNN/unshared')"
    [ -n "$shared" ] && [ -n "$unshared" ]
    gridratio="$(awk -v s="$shared" -v u="$unshared" 'BEGIN { printf("%.6f", s / u) }')"
    echo "round $i: grid shared ${shared} ns/op, unshared ${unshared} ns/op, ratio ${gridratio}"
    if [ -z "$bestgrid" ] || awk -v a="$gridratio" -v b="$bestgrid" 'BEGIN { exit !(a < b) }'; then
        bestgrid="$gridratio"
    fi
done
awk -v ratio="$bestgrid" 'BEGIN {
    if (ratio > 0.75) {
        printf("FAIL: shared plane saves <25%% on the kNN grid: shared/unshared ratio %.4f > 0.75\n", ratio)
        exit 1
    }
    printf("grid kNN plane: shared/unshared ratio %.4f (gate 0.75)\n", ratio)
}'

# Landmark-prune perf gate: BenchmarkFigure9KNNPrune builds the complete
# k=15 neighbourhood structure of the Figure-9 reference workload (20d,
# n=1000 — the widest views the kNN detectors score) twice in the same
# process, once through the landmark-pruned tier and once with the plain
# exhaustive scan. Both arms are warm-index (the plane builds each index
# once and serves every request from it), and the pruned/unpruned ratio is
# self-normalising against host load, same as the grid gate above. Gate on
# pruned ≤ 0.75× unpruned — the ≥25% speedup the PR-8 acceptance criteria
# demand. Best of three rounds: noise only ever shrinks the measured gap.
bestprune=""
for i in 1 2 3; do
    pruneout="$(go test -run '^$' -bench 'BenchmarkFigure9KNNPrune$' -benchtime=30x .)"
    pruned="$(echo "$pruneout" | getns '^BenchmarkFigure9KNNPrune/pruned')"
    unpruned="$(echo "$pruneout" | getns '^BenchmarkFigure9KNNPrune/unpruned')"
    [ -n "$pruned" ] && [ -n "$unpruned" ]
    pruneratio="$(awk -v p="$pruned" -v u="$unpruned" 'BEGIN { printf("%.6f", p / u) }')"
    echo "round $i: pruned ${pruned} ns/op, unpruned ${unpruned} ns/op, ratio ${pruneratio}"
    if [ -z "$bestprune" ] || awk -v a="$pruneratio" -v b="$bestprune" 'BEGIN { exit !(a < b) }'; then
        bestprune="$pruneratio"
    fi
done
awk -v ratio="$bestprune" 'BEGIN {
    if (ratio > 0.75) {
        printf("FAIL: landmark tier saves <25%% on Figure-9 kNN: pruned/unpruned ratio %.4f > 0.75\n", ratio)
        exit 1
    }
    printf("landmark prune: pruned/unpruned ratio %.4f (gate 0.75)\n", ratio)
}'

# Quantized-prefilter perf gate: BenchmarkFigure9KNNQuant builds the same
# complete Figure-9 neighbourhood structure twice in the same process —
# once with the quantized 8-bit prefilter under the landmark tier, once
# with the prefilter disabled (candidates go straight to the exact
# distance kernel) — so the quant/noquant ratio is self-normalising
# against host load, same as the gates above. Gate on quant ≤ 0.85×
# noquant — the ≥15% speedup the PR-10 acceptance criteria demand
# (measured ~0.73 at recording time). Best of three rounds: noise only
# ever shrinks the measured gap. Neighbour-set bit-identicality between
# the two arms is enforced separately by the deterministic property tests
# and the fuzz smoke below, not by this timing gate.
bestquant=""
for i in 1 2 3; do
    quantout="$(go test -run '^$' -bench 'BenchmarkFigure9KNNQuant$' -benchtime=30x .)"
    quant="$(echo "$quantout" | getns '^BenchmarkFigure9KNNQuant/quant')"
    noquant="$(echo "$quantout" | getns '^BenchmarkFigure9KNNQuant/noquant')"
    [ -n "$quant" ] && [ -n "$noquant" ]
    quantratio="$(awk -v q="$quant" -v u="$noquant" 'BEGIN { printf("%.6f", q / u) }')"
    echo "round $i: quant ${quant} ns/op, noquant ${noquant} ns/op, ratio ${quantratio}"
    if [ -z "$bestquant" ] || awk -v a="$quantratio" -v b="$bestquant" 'BEGIN { exit !(a < b) }'; then
        bestquant="$quantratio"
    fi
done
awk -v ratio="$bestquant" 'BEGIN {
    if (ratio > 0.85) {
        printf("FAIL: quantized prefilter saves <15%% on Figure-9 kNN: quant/noquant ratio %.4f > 0.85\n", ratio)
        exit 1
    }
    printf("quant prefilter: quant/noquant ratio %.4f (gate 0.85)\n", ratio)
}'

# Incremental-stream perf gate: BenchmarkStreamWindow pushes the reference
# stream workload (W=256, stride=64, 20d, LOF k=15) through the sliding-
# window monitor twice in the same process — once with the incremental
# neighbourhood engine, once rebuilding the window from scratch every
# stride — so the incremental/rebuild ratio is self-normalising against
# host load, same as the grid and prune gates above. Gate on incremental
# ≤ 0.60× rebuild — the ≥1.6× steady-state speedup the PR-9 acceptance
# criteria demand (measured ~0.51 at recording time). Best of three
# rounds: noise only ever shrinks the measured gap. Alert bit-identicality
# between the two arms is enforced separately by the deterministic parity
# tests in internal/stream, not by this timing gate.
beststream=""
for i in 1 2 3; do
    streamout="$(go test -run '^$' -bench 'BenchmarkStreamWindow' -benchtime=100x ./internal/stream)"
    streaminc="$(echo "$streamout" | getns '^BenchmarkStreamWindow/incremental')"
    streamreb="$(echo "$streamout" | getns '^BenchmarkStreamWindow/rebuild')"
    [ -n "$streaminc" ] && [ -n "$streamreb" ]
    streamratio="$(awk -v a="$streaminc" -v r="$streamreb" 'BEGIN { printf("%.6f", a / r) }')"
    echo "round $i: stream incremental ${streaminc} ns/op, rebuild ${streamreb} ns/op, ratio ${streamratio}"
    if [ -z "$beststream" ] || awk -v a="$streamratio" -v b="$beststream" 'BEGIN { exit !(a < b) }'; then
        beststream="$streamratio"
    fi
done
awk -v ratio="$beststream" 'BEGIN {
    if (ratio > 0.60) {
        printf("FAIL: incremental stream engine saves <40%% per stride: incremental/rebuild ratio %.4f > 0.60\n", ratio)
        exit 1
    }
    printf("stream window: incremental/rebuild ratio %.4f (gate 0.60)\n", ratio)
}'

# Repair-fraction gate: independent of timing, the incremental engine must
# repair only a small fraction of surviving k-lists per stride on the same
# reference workload — the structural reason the ratio gate above holds.
# TestStreamRepairFractionReference pins a deterministic ceiling of 0.05
# (measured 0.024 with a seeded stream); a weakened trusted-prefix bound
# fails this gate even on an idle, fast box.
go test -count=1 -run 'TestStreamRepairFractionReference$' ./internal/stream

# Prune-effectiveness gate: independent of timing, the landmark bound must
# reject enough of the candidate stream that at most 60% reaches the exact
# distance kernel on the same reference workload. A deterministic property
# of the data and the seeded selection — cannot flake with host load — so
# a bound weakened by a refactor fails even if the box happens to be fast.
go test -count=1 -run 'TestPruneEffectivenessFigure9$' ./internal/neighbors

# Survivor-fraction gate: the quantized prefilter's equivalent structural
# gate — on the same Figure-9 reference workload, at most 15% of the
# candidates the 8-bit code bound tests may survive to the exact distance
# kernel. Deterministic in the data and the code construction, so a bound
# loosened by a quantisation change fails here regardless of host timing.
go test -count=1 -run 'TestQuantSurvivorFractionFigure9$' ./internal/neighbors

# Dedup-factor gate: the plane must collapse the grid's repeated (dataset,
# subspace) kNN queries at least 1.5×. TestGridPlaneDedupFactor asserts
# exactly that on the mini-grid; run it explicitly (and uncached) so a
# dedup regression fails the gate even if someone prunes the -race sweep.
go test -count=1 -run 'TestGridPlaneDedupFactor$' ./internal/pipeline

# anexd smoke: boot the explanation server in-process under the race
# detector, register a dataset over HTTP, run concurrent explains, and pin
# the service contract — warm-path dedup factor > 1 on a repeated request,
# 429 + Retry-After under saturation, and a clean (exit-0) drain of
# in-flight requests on a real SIGTERM. TestAnexdChaosKill9Recovery is the
# chaos smoke: a real anexd binary SIGKILLed mid-registration-loop must
# come back from its -data-dir serving every acked dataset byte-
# identically to the retrying client.
go test -race -count=1 -run 'TestAnexd' ./cmd/anexd

#!/bin/sh
# Tier-1 gate: vet, build, and the full test suite under the race detector.
# Every concurrent path in the repo (singleflight cache, parallel inner
# loops, the grid worker pool) is exercised by tests, so -race failing here
# means a real data race, not flakiness.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...

# Short fuzz smoke on the CSV parser: the only loader of external bytes.
# 10 seconds is enough to shake out parser regressions without slowing the
# gate; a reproducing input would land in internal/dataset/testdata/fuzz.
go test ./internal/dataset -run FuzzReadCSV -fuzz=FuzzReadCSV -fuzztime=10s

# Benchmark smoke: one iteration of the grid benchmark proves the bench
# harness still compiles and runs end to end (full numbers come from
# scripts/bench.sh, which this deliberately does not replicate).
go test -run '^$' -bench 'BenchmarkRunGrid/workers=4' -benchtime=1x ./internal/pipeline

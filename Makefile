GO ?= go

.PHONY: check test build vet bench profile anexd smoke-anexd

# Tier-1 gate: vet + build + race-detected tests (scripts/check.sh).
check:
	sh scripts/check.sh

test:
	$(GO) test ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# CPU + heap profile of the Figure-9 hot path (the Beam/LOF acceptance
# metric) at small scale. Inspect with `go tool pprof cpu.out` /
# `go tool pprof -sample_index=alloc_space mem.out`.
profile:
	$(GO) build -o anexbench.profile.bin ./cmd/anexbench
	./anexbench.profile.bin -scale small -exp figure9 -quiet -cpuprofile cpu.out -memprofile mem.out
	rm -f anexbench.profile.bin

# Build the explanation server binary.
anexd:
	$(GO) build -o anexd.bin ./cmd/anexd

# The anexd service smoke on its own (also part of `make check`): register,
# concurrent explains, 429 under saturation, clean SIGTERM drain — all
# under the race detector.
smoke-anexd:
	$(GO) test -race -count=1 -run 'TestAnexd' ./cmd/anexd

# Worker-scaling benchmarks for the parallel inner loops.
bench:
	$(GO) test ./internal/detector/ -run XXX -bench BenchmarkDetectorWorkers -benchtime 1s
	$(GO) test ./internal/pipeline/ -run XXX -bench BenchmarkRunGrid -benchtime 1x

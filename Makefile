GO ?= go

.PHONY: check test build vet bench

# Tier-1 gate: vet + build + race-detected tests (scripts/check.sh).
check:
	sh scripts/check.sh

test:
	$(GO) test ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Worker-scaling benchmarks for the parallel inner loops.
bench:
	$(GO) test ./internal/detector/ -run XXX -bench BenchmarkDetectorWorkers -benchtime 1s
	$(GO) test ./internal/pipeline/ -run XXX -bench BenchmarkRunGrid -benchtime 1x

// Package anex is a Go library for unsupervised, detector-agnostic anomaly
// explanation, reproducing the testbed of "A Comparative Evaluation of
// Anomaly Explanation Algorithms" (Myrtakis, Christophides, Simon — EDBT
// 2021).
//
// Given a multi-dimensional numeric dataset and a set of outlier points,
// the library ranks the feature subspaces that best explain WHY those
// points are abnormal:
//
//   - Point explainers (Beam, RefOut) rank subspaces explaining the
//     outlyingness of one individual point.
//   - Explanation summarizers (LookOut, HiCS) rank subspaces that jointly
//     separate as many outliers from the inliers as possible.
//
// All four algorithms are detector-agnostic: they accept any Detector, and
// three are provided — LOF (density-based), FastABOD (angle-based) and
// IsolationForest (isolation-based).
//
// # Quick start
//
//	ds, _ := anex.FromRows("my-data", rows, nil)
//	det := anex.NewLOF(15)
//	beam := anex.NewBeam(det)
//	explanations, _ := beam.ExplainPoint(ctx, ds, suspiciousPoint, 2)
//	fmt.Println(explanations[0].Subspace) // e.g. {F3, F7}
//
// Every scoring entry point takes a context.Context: cancelling it (or
// letting a deadline pass) aborts the search promptly with the context's
// error, which is how the CLIs implement clean SIGINT shutdown and per-cell
// grid timeouts.
//
// The subpackages are re-exported here so that applications only import
// anex; the experiment harness that regenerates the paper's tables and
// figures lives in cmd/anexbench.
package anex

import (
	"context"
	"io"
	"math/rand"

	"anex/internal/core"
	"anex/internal/dataset"
	"anex/internal/detector"
	"anex/internal/explain"
	"anex/internal/metrics"
	"anex/internal/neighbors"
	"anex/internal/parallel"
	"anex/internal/pipeline"
	"anex/internal/plot"
	"anex/internal/server"
	"anex/internal/stream"
	"anex/internal/subspace"
	"anex/internal/summarize"
	"anex/internal/surrogate"
	"anex/internal/synth"
)

// Core data model.
type (
	// Dataset is an immutable numeric dataset (see FromRows, FromColumns,
	// ReadCSV).
	Dataset = dataset.Dataset
	// View is a dataset projected onto one subspace.
	View = dataset.View
	// GroundTruth associates outliers with their relevant subspaces.
	GroundTruth = dataset.GroundTruth
	// Subspace is a canonical set of feature indices.
	Subspace = subspace.Subspace
	// ScoredSubspace pairs a subspace with its producer's score.
	ScoredSubspace = core.ScoredSubspace
)

// Algorithm contracts.
type (
	// Detector scores the outlyingness of every point of a view
	// (higher = more outlying).
	Detector = core.Detector
	// PointExplainer ranks subspaces explaining one point.
	PointExplainer = core.PointExplainer
	// Summarizer ranks subspaces jointly explaining many points.
	Summarizer = core.Summarizer
)

// Detectors.
type (
	// LOF is the Local Outlier Factor detector (Breunig et al. 2000).
	LOF = detector.LOF
	// FastABOD is the fast Angle-Based Outlier Detector (Kriegel et al. 2008).
	FastABOD = detector.FastABOD
	// IsolationForest is the isolation-based detector (Liu et al. 2008).
	IsolationForest = detector.IsolationForest
	// LODA is the lightweight on-line detector of anomalies (Pevný 2015),
	// an extension beyond the paper's three batch detectors.
	LODA = detector.LODA
	// LODAModel is a fitted LODA supporting online scoring, updating, and
	// per-feature explanation.
	LODAModel = detector.LODAModel
	// KNNDist is the mean-kNN-distance baseline detector.
	KNNDist = detector.KNNDist
)

// Predictive explanations (the paper's concluding future-work proposal):
// surrogate models approximating a detector's decision boundary, explaining
// points through minimal predictive signatures at O(depth) cost.
type (
	// SurrogateTree is a CART regression surrogate of a detector.
	SurrogateTree = surrogate.Tree
	// SurrogateForest is a bagged ensemble of surrogate trees.
	SurrogateForest = surrogate.Forest
	// SurrogateTreeOptions configures tree fitting.
	SurrogateTreeOptions = surrogate.TreeOptions
	// SurrogateForestOptions configures the ensemble.
	SurrogateForestOptions = surrogate.ForestOptions
)

// FitSurrogateTree fits a regression-tree surrogate on (features → target).
func FitSurrogateTree(ds *Dataset, target []float64, opts SurrogateTreeOptions) (*SurrogateTree, error) {
	return surrogate.FitTree(ds, target, opts)
}

// FitSurrogateForest fits a bagged surrogate on (features → target).
func FitSurrogateForest(ds *Dataset, target []float64, opts SurrogateForestOptions) (*SurrogateForest, error) {
	return surrogate.FitForest(ds, target, opts)
}

// ExplainDetectorWithSurrogate scores the dataset with the detector, fits a
// surrogate forest on the scores, and returns it with its R² fidelity.
func ExplainDetectorWithSurrogate(ctx context.Context, ds *Dataset, det Detector, opts SurrogateForestOptions) (*SurrogateForest, float64, error) {
	return surrogate.ExplainDetector(ctx, ds, det, opts)
}

// Streaming (the paper's future-work direction, Section 6).
type (
	// StreamMonitor is a sliding-window detection + re-explanation
	// pipeline over a point stream.
	StreamMonitor = stream.Monitor
	// StreamConfig parameterises a StreamMonitor.
	StreamConfig = stream.Config
	// StreamAlert is one flagged, explained stream point.
	StreamAlert = stream.Alert
	// StreamStats counts a StreamMonitor's evaluations and the work its
	// incremental engine saved (repairs, rescans, dirty rescores).
	StreamStats = stream.StreamStats
)

// Explanation algorithms.
type (
	// Beam is the stage-wise greedy point explainer (Nguyen et al. 2016).
	Beam = explain.Beam
	// RefOut is the random-projection point explainer (Keller et al. 2013).
	RefOut = explain.RefOut
	// LookOut is the submodular-coverage summarizer (Gupta et al. 2018).
	LookOut = summarize.LookOut
	// HiCS is the high-contrast-subspace summarizer (Keller et al. 2012).
	HiCS = summarize.HiCS
	// GroupSummarizer partitions outliers into groups sharing one
	// characterizing subspace each (after Macha & Akoglu 2018, the
	// paper's group-explanation future-work reference).
	GroupSummarizer = summarize.GroupSummarizer
	// OutlierGroup is one group of outliers with its characterizing
	// subspace.
	OutlierGroup = summarize.Group
)

// PointResult is the evaluation of one explained point against ground truth.
type PointResult = metrics.PointResult

// NewSubspace returns the canonical subspace over the given features.
func NewSubspace(features ...int) Subspace { return subspace.New(features...) }

// ParseSubspace parses a canonical key such as "1,4,9".
func ParseSubspace(key string) (Subspace, error) { return subspace.Parse(key) }

// FromRows builds a dataset from row-major data. Feature names may be nil.
func FromRows(name string, rows [][]float64, features []string) (*Dataset, error) {
	return dataset.FromRows(name, rows, features)
}

// FromColumns builds a dataset from column-major data without copying.
func FromColumns(name string, cols [][]float64, features []string) (*Dataset, error) {
	return dataset.New(name, cols, features)
}

// ReadCSV reads a dataset from CSV; set header when the first record names
// the features.
func ReadCSV(name string, r io.Reader, header bool) (*Dataset, error) {
	return dataset.ReadCSV(name, r, header)
}

// LoadCSV reads a dataset (with header) from a file.
func LoadCSV(name, path string) (*Dataset, error) { return dataset.LoadCSV(name, path) }

// NewLOF returns a LOF detector with neighbourhood size k (0 → 15, the
// paper's setting).
func NewLOF(k int) *LOF { return detector.NewLOF(k) }

// NewFastABOD returns a Fast ABOD detector with neighbourhood size k
// (0 → 10, the paper's setting).
func NewFastABOD(k int) *FastABOD { return detector.NewFastABOD(k) }

// NewIsolationForest returns an Isolation Forest with the paper's settings
// (100 trees, subsample 256, 10 averaged repetitions).
func NewIsolationForest(seed int64) *IsolationForest { return detector.NewIsolationForest(seed) }

// NewLODA returns a LODA detector (100 sparse random projections).
func NewLODA(seed int64) *LODA { return detector.NewLODA(seed) }

// FitLODA fits a LODA model on raw points for online scoring, updating and
// per-feature explanation. projections and bins of 0 select the defaults.
func FitLODA(points [][]float64, projections, bins int, seed int64) *LODAModel {
	return detector.FitLODA(points, projections, bins, seed)
}

// NewKNNDist returns the mean-kNN-distance baseline detector (0 → k=10).
func NewKNNDist(k int) *KNNDist { return detector.NewKNNDist(k) }

// NewStreamMonitor builds a sliding-window detection + explanation monitor.
func NewStreamMonitor(cfg StreamConfig) (*StreamMonitor, error) { return stream.NewMonitor(cfg) }

// StreamThreshold returns a pointer to z for StreamConfig.ZThreshold,
// distinguishing a deliberate zero threshold from "unset, use the default".
func StreamThreshold(z float64) *float64 { return stream.Threshold(z) }

// StreamSlack returns a pointer to s for StreamConfig.Slack,
// distinguishing a deliberate zero slack from "unset, use the default".
func StreamSlack(s int) *int { return stream.Slack(s) }

// CachedDetector wraps a detector with a per-subspace score memo, sound
// whenever the detector is deterministic per subspace (all three built-in
// detectors are). The cache is safe for concurrent use and deduplicates
// concurrent misses on one subspace singleflight-style.
func CachedDetector(d Detector) Detector { return detector.NewCached(d) }

// TimedDetector wraps a detector with a concurrency-safe accumulator of the
// time spent inside Scores, the instrument behind the per-phase (scoring vs.
// search) timing that pipeline results report.
type TimedDetector = detector.Timed

// NewTimedDetector wraps d with a scoring-time accumulator.
func NewTimedDetector(d Detector) *TimedDetector { return detector.NewTimed(d) }

// ResolveWorkers maps a user-facing worker knob to a concrete count: values
// ≤ 0 select GOMAXPROCS (use every core), anything positive is returned
// unchanged. Inner-loop Workers fields (detectors, pipelines) treat counts
// ≤ 1 as serial, so resolve once at the boundary and pass the result down.
func ResolveWorkers(workers int) int { return parallel.Resolve(workers) }

// NewBeam returns the Beam point explainer with the paper's settings
// (beam width 100, top-100 results, variable output dimensionality).
func NewBeam(det Detector) *Beam { return explain.NewBeam(det) }

// NewBeamFX returns the fixed-dimensionality Beam_FX variant used in the
// paper's experiments.
func NewBeamFX(det Detector) *Beam { return explain.NewBeamFX(det) }

// NewRefOut returns the RefOut point explainer with the paper's settings
// (pool 100 at 70% dimensionality, Welch's t-test discrepancy).
func NewRefOut(det Detector, seed int64) *RefOut { return explain.NewRefOut(det, seed) }

// NewLookOut returns the LookOut summarizer with the paper's settings
// (budget 100).
func NewLookOut(det Detector) *LookOut { return summarize.NewLookOut(det) }

// NewHiCS returns the HiCS summarizer with the paper's settings
// (candidate cutoff 400, α=0.1, 100 Monte-Carlo Welch iterations).
func NewHiCS(det Detector, seed int64) *HiCS { return summarize.NewHiCS(det, seed) }

// NewHiCSFX returns the fixed-dimensionality HiCS_FX variant used in the
// paper's experiments.
func NewHiCSFX(det Detector, seed int64) *HiCS { return summarize.NewHiCSFX(det, seed) }

// NewGroupSummarizer returns a group-based explanation summarizer.
func NewGroupSummarizer(det Detector) *GroupSummarizer { return summarize.NewGroupSummarizer(det) }

// NewGroundTruth builds a ground truth from a point → relevant-subspaces map.
func NewGroundTruth(relevant map[int][]Subspace) *GroundTruth {
	return dataset.NewGroundTruth(relevant)
}

// ReadGroundTruthJSON reads a ground truth serialised by
// GroundTruth.WriteJSON (the format anexgen emits).
func ReadGroundTruthJSON(r io.Reader) (*GroundTruth, error) {
	return dataset.ReadGroundTruthJSON(r)
}

// Evaluation metrics (Section 3.3 of the paper).

// AveragePrecision computes AveP of a ranked explanation list against the
// relevant subspaces (Eq. 2).
func AveragePrecision(returned, relevant []Subspace) float64 {
	return metrics.AveragePrecision(returned, relevant)
}

// Precision computes |REL ∩ EXP| / |EXP| (Eq. 1).
func Precision(returned, relevant []Subspace) float64 {
	return metrics.Precision(returned, relevant)
}

// Recall computes |REL ∩ EXP| / |REL|.
func Recall(returned, relevant []Subspace) float64 {
	return metrics.Recall(returned, relevant)
}

// EvaluatePoint scores one point's ranked explanation list.
func EvaluatePoint(p int, returned, relevant []Subspace) PointResult {
	return metrics.EvaluatePoint(p, returned, relevant)
}

// MAP computes the Mean Average Precision over per-point results (Eq. 3).
func MAP(results []PointResult) float64 { return metrics.MAP(results) }

// MeanRecall computes the mean per-point recall.
func MeanRecall(results []PointResult) float64 { return metrics.MeanRecall(results) }

// ROCAUC measures detector quality: the area under the ROC curve of the
// outlyingness scores against binary outlier labels.
func ROCAUC(scores []float64, outlier []bool) float64 { return metrics.ROCAUC(scores, outlier) }

// PrecisionAtN measures detector quality at the top of the ranking; n ≤ 0
// selects R-precision (n = number of true outliers).
func PrecisionAtN(scores []float64, outlier []bool, n int) float64 {
	return metrics.PrecisionAtN(scores, outlier, n)
}

// AveragePrecisionScore is the average precision of a score ranking against
// binary outlier labels.
func AveragePrecisionScore(scores []float64, outlier []bool) float64 {
	return metrics.AveragePrecisionScore(scores, outlier)
}

// Subspaces projects a ranked ScoredSubspace list onto its subspaces.
func Subspaces(list []ScoredSubspace) []Subspace { return core.Subspaces(list) }

// PlotOptions controls the terminal scatter rendering of PlotSubspace.
type PlotOptions = plot.Options

// PlotSubspace renders a 2d subspace of the dataset as a terminal scatter
// plot with the given points highlighted — LookOut's pictorial explanation.
func PlotSubspace(w io.Writer, ds *Dataset, s Subspace, opts PlotOptions) error {
	return plot.Scatter(w, ds.View(s), opts)
}

// Synthetic data generation (Section 3.2 of the paper).

// SubspaceOutlierConfig configures the HiCS-style generator planting
// subspace outliers in correlated feature groups.
type SubspaceOutlierConfig = synth.SubspaceConfig

// FullSpaceOutlierConfig configures the generator planting full-space
// density outliers (the real-world-dataset substitute).
type FullSpaceOutlierConfig = synth.FullSpaceConfig

// GenerateSubspaceOutliers builds a dataset with planted subspace outliers
// and its ground truth.
func GenerateSubspaceOutliers(c SubspaceOutlierConfig) (*Dataset, *GroundTruth, error) {
	return synth.GenerateSubspaceOutliers(c)
}

// GenerateFullSpaceOutliers builds a dataset with planted full-space
// density outliers, returning the outlier indices.
func GenerateFullSpaceOutliers(c FullSpaceOutlierConfig) (*Dataset, []int, error) {
	return synth.GenerateFullSpaceOutliers(c)
}

// DeriveGroundTruth derives per-outlier relevant subspaces by exhaustive
// detector search over the given dimensionalities, the paper's methodology
// for full-space outliers. Cancelling ctx aborts the sweep.
func DeriveGroundTruth(ctx context.Context, ds *Dataset, outliers []int, dims []int, det Detector) (*GroundTruth, error) {
	return synth.DeriveTopSubspaceGroundTruth(ctx, ds, outliers, dims, det)
}

// RandomSubspace draws a uniformly random k-feature subspace of a
// d-feature space.
func RandomSubspace(rng *rand.Rand, d, k int) Subspace { return subspace.Random(rng, d, k) }

// Pipelines (Figure 7 of the paper).

// PipelineResult is the outcome of one detector × explainer execution.
type PipelineResult = pipeline.Result

// GridSpec describes a full detector × explainer grid execution (the
// paper's Figure 7), optionally parallel.
type GridSpec = pipeline.GridSpec

// NamedDetector pairs a detector with its report name, for GridSpec.
type NamedDetector = pipeline.NamedDetector

// PipelineOptions tunes the explainer hyper-parameters of a grid away from
// the paper's defaults.
type PipelineOptions = pipeline.Options

// Journal is an append-only checkpoint of completed grid cells enabling
// resume after interruption (see pipeline.OpenJournal).
type Journal = pipeline.Journal

// OpenJournal opens (or creates) a checkpoint journal at path, recovering
// already-completed cells and truncating any torn trailing write.
func OpenJournal(path string) (*Journal, error) { return pipeline.OpenJournal(path) }

// RunGrid executes every detector × explainer pipeline of the spec and
// returns the cell results in deterministic order. Cancelling ctx stops
// scheduling new cells and stamps unfinished cells with ctx's error; cells
// that panic or time out carry the failure in their Result.Err while the
// rest of the grid completes. The returned error reports journal I/O
// problems only.
func RunGrid(ctx context.Context, spec GridSpec) ([]PipelineResult, error) {
	return pipeline.RunGrid(ctx, spec)
}

// NeighborhoodPlane is the shared kNN cache behind the library's
// kNN-based detectors: one computation per (dataset, subspace) at the
// maximum registered neighbourhood size, prefix-sliced for every consumer,
// byte-budgeted with LRU eviction. Detectors constructed by this library
// share one process-wide plane by default; GridSpec.Plane injects a
// private one.
type NeighborhoodPlane = neighbors.Plane

// NeighborhoodPlaneStats is a snapshot of a plane's activity (queries,
// hits, dedup factor, residency).
type NeighborhoodPlaneStats = neighbors.PlaneStats

// NewNeighborhoodPlane returns a plane bounded by maxBytes of resident
// neighbourhood structures (≤ 0 selects the 256 MiB default).
func NewNeighborhoodPlane(maxBytes int64) *NeighborhoodPlane {
	return neighbors.NewPlane(maxBytes)
}

// SharedNeighborhoodPlane returns the process-wide default plane that
// detector constructors wire in.
func SharedNeighborhoodPlane() *NeighborhoodPlane { return neighbors.Shared() }

// Explanation as a service (the anexd server's core, usable in-process).
type (
	// ExplainEngine is the long-lived explanation core behind the anexd
	// HTTP server and the anexplain CLI: a multi-tenant dataset registry
	// whose shared neighbourhood plane and per-dataset score memos persist
	// across requests, so repeated explanations cost cache lookups instead
	// of detector work.
	ExplainEngine = server.Engine
	// ExplainEngineConfig sizes an ExplainEngine.
	ExplainEngineConfig = server.EngineConfig
	// ExplainRequest asks an engine to explain points of a registered
	// dataset; zero-valued knobs select the anexplain CLI defaults.
	ExplainRequest = server.ExplainRequest
	// ExplainResponse is an engine's ranked answer.
	ExplainResponse = server.ExplainResponse
)

// NewExplainEngine builds an explanation engine with its own private
// neighbourhood plane and score-memo budgets.
func NewExplainEngine(cfg ExplainEngineConfig) *ExplainEngine { return server.NewEngine(cfg) }

// ExplainOutliers runs the explainer on every outlier the ground truth
// explains at targetDim and evaluates MAP/recall against it.
func ExplainOutliers(ctx context.Context, ds *Dataset, gt *GroundTruth, detName string, e PointExplainer, targetDim int) PipelineResult {
	return pipeline.RunPointExplanation(ctx, ds, gt, pipeline.PointPipeline{Detector: detName, Explainer: e}, targetDim)
}

// SummarizeOutliers runs the summarizer once over all ground-truth outliers
// and evaluates the shared summary per point at targetDim, in summary order.
func SummarizeOutliers(ctx context.Context, ds *Dataset, gt *GroundTruth, detName string, s Summarizer, targetDim int) PipelineResult {
	return pipeline.RunSummarization(ctx, ds, gt, pipeline.SummaryPipeline{Detector: detName, Summarizer: s}, targetDim)
}

// SummarizeOutliersRanked is SummarizeOutliers with the paper's per-point
// evaluation: each point sees the shared summary re-ranked by its own
// standardised outlyingness under ranker before AveP is computed.
func SummarizeOutliersRanked(ctx context.Context, ds *Dataset, gt *GroundTruth, detName string, s Summarizer, ranker Detector, targetDim int) PipelineResult {
	return pipeline.RunSummarization(ctx, ds, gt, pipeline.SummaryPipeline{Detector: detName, Summarizer: s, Ranker: ranker}, targetDim)
}

package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"anex/internal/dataset"
)

func TestRunSyntheticFamily(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), "small", 1, dir, "synthetic", false); err != nil {
		t.Fatal(err)
	}
	// Five synthetic datasets, each with CSV + ground truth.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 10 {
		t.Fatalf("%d files, want 10", len(entries))
	}
	// Round-trip one dataset and its ground truth.
	ds, err := dataset.LoadCSV("hics-8d", filepath.Join(dir, "hics-8d.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 250 || ds.D() != 8 {
		t.Errorf("shape %dx%d", ds.N(), ds.D())
	}
	f, err := os.Open(filepath.Join(dir, "hics-8d.groundtruth.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	gt, err := dataset.ReadGroundTruthJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if gt.NumOutliers() == 0 {
		t.Error("empty ground truth")
	}
}

func TestRunRealFamilyWithDerivation(t *testing.T) {
	if testing.Short() {
		t.Skip("derives ground truth exhaustively")
	}
	dir := t.TempDir()
	if err := run(context.Background(), "small", 1, dir, "real", true); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "breast-like.groundtruth.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	gt, err := dataset.ReadGroundTruthJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	// 12 outliers, 2 relevant subspaces each (dims 2 and 3).
	if gt.NumOutliers() != 12 {
		t.Errorf("outliers = %d", gt.NumOutliers())
	}
	for _, p := range gt.Outliers() {
		if len(gt.RelevantFor(p)) != 2 {
			t.Errorf("point %d has %d relevant subspaces", p, len(gt.RelevantFor(p)))
		}
	}
}

func TestRunRealFamilyWithoutDerivation(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), "small", 1, dir, "real", false); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "electricity-like.groundtruth.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	gt, err := dataset.ReadGroundTruthJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if gt.NumOutliers() != 30 {
		t.Errorf("outliers = %d", gt.NumOutliers())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), "huge", 1, t.TempDir(), "all", false); err == nil {
		t.Error("unknown scale should fail")
	}
	if err := run(context.Background(), "small", 1, t.TempDir(), "imaginary", false); err == nil {
		t.Error("unknown family should fail")
	}
}

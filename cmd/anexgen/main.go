// Command anexgen generates the testbed datasets of the paper — the
// HiCS-style synthetic family with subspace outliers and the
// real-world-like family with full-space outliers — and writes each as a
// CSV file plus a ground-truth JSON file.
//
// Usage:
//
//	anexgen [-scale small|paper] [-seed N] [-out dir] [-family synthetic|real|all] [-derive]
//
// With -derive the real-like ground truth is derived by the exhaustive LOF
// search of the paper (slow at paper scale); without it each outlier is
// recorded with the full feature space as a placeholder relevant subspace,
// preserving the outlier indices for later derivation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"anex/internal/clix"
	"anex/internal/dataset"
	"anex/internal/detector"
	"anex/internal/subspace"
	"anex/internal/synth"
)

func main() {
	var (
		scaleFlag = flag.String("scale", "small", "testbed scale: small or paper")
		seed      = flag.Int64("seed", 42, "random seed")
		outDir    = flag.String("out", "testbed", "output directory")
		family    = flag.String("family", "all", "dataset family: synthetic, real or all")
		derive    = flag.Bool("derive", true, "derive real-like ground truth by exhaustive LOF search")
	)
	flag.Parse()

	clix.Main("anexgen", func(ctx context.Context) error {
		return run(ctx, *scaleFlag, *seed, *outDir, *family, *derive)
	})
}

func run(ctx context.Context, scaleFlag string, seed int64, outDir, family string, derive bool) error {
	scale, err := synth.ParseScale(scaleFlag)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}

	if family == "all" || family == "synthetic" {
		for _, c := range synth.SyntheticConfigs(scale, seed) {
			ds, gt, err := synth.GenerateSubspaceOutliers(c)
			if err != nil {
				return err
			}
			if err := write(outDir, ds, gt); err != nil {
				return err
			}
		}
	}
	if family == "all" || family == "real" {
		for _, c := range synth.RealWorldConfigs(scale, seed) {
			ds, outliers, err := synth.GenerateFullSpaceOutliers(c)
			if err != nil {
				return err
			}
			var gt *dataset.GroundTruth
			if derive {
				fmt.Fprintf(os.Stderr, "deriving ground truth for %s (exhaustive LOF search)…\n", c.Name)
				gt, err = synth.DeriveTopSubspaceGroundTruth(ctx, ds, outliers, synth.GroundTruthDims(scale), detector.NewLOF(detector.DefaultLOFK))
				if err != nil {
					return err
				}
			} else {
				rel := make(map[int][]subspace.Subspace, len(outliers))
				for _, p := range outliers {
					rel[p] = []subspace.Subspace{subspace.Full(ds.D())}
				}
				gt = dataset.NewGroundTruth(rel)
			}
			if err := write(outDir, ds, gt); err != nil {
				return err
			}
		}
	}
	if family != "all" && family != "synthetic" && family != "real" {
		return fmt.Errorf("unknown family %q (want synthetic, real or all)", family)
	}
	return nil
}

func write(dir string, ds *dataset.Dataset, gt *dataset.GroundTruth) error {
	csvPath := filepath.Join(dir, ds.Name()+".csv")
	if err := ds.SaveCSV(csvPath); err != nil {
		return err
	}
	gtPath := filepath.Join(dir, ds.Name()+".groundtruth.json")
	f, err := os.Create(gtPath)
	if err != nil {
		return err
	}
	if err := gt.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%s: %d points × %d features, %d outliers → %s, %s\n",
		ds.Name(), ds.N(), ds.D(), gt.NumOutliers(), csvPath, gtPath)
	return nil
}

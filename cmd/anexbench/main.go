// Command anexbench regenerates the tables and figures of the paper
// "A Comparative Evaluation of Anomaly Explanation Algorithms" (EDBT 2021)
// on a freshly generated testbed.
//
// Usage:
//
//	anexbench [-scale small|paper] [-seed N] [-exp all|table1|figure8|figure9|figure10|figure11|table2|ablation|conformance|stream] [-csv dir] [-quiet] [-workers N] [-cache-mb 256] [-plane-mb 256] [-landmarks N] [-no-prune] [-quant N] [-no-quant] [-stats]
//
// The stream experiment (-exp stream; not part of -exp all) benchmarks the
// sliding-window monitor on a synthetic Gaussian stream, running the same
// points through the incremental neighbourhood engine and through a cold
// rebuild per evaluation, verifying the two alert streams are identical,
// and reporting the wall-clock ratio. Its shape is set by the -stream-*
// flags (defaults: the reference workload W=256, stride=64, 20d).
//
// At the default small scale the full run finishes in minutes on a laptop;
// paper scale matches the dataset shapes of the paper's Table 1 and can
// take hours for the heaviest cells, exactly like the original study.
// Interrupting a run (SIGINT/SIGTERM) aborts the in-flight experiment; with
// -journal, completed pipeline cells persist across invocations, so
// re-running the same command resumes where the interrupted run stopped.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"anex/internal/clix"
	"anex/internal/experiments"
	"anex/internal/neighbors"
	"anex/internal/pipeline"
	"anex/internal/synth"
)

func main() {
	var (
		scaleFlag = flag.String("scale", "small", "testbed scale: small or paper")
		seed      = flag.Int64("seed", 42, "random seed for data generation and stochastic algorithms")
		exp       = flag.String("exp", "all", "experiment to run: all, table1, figure8, figure9, figure10, figure11, table2, ablation, conformance, or stream (not part of all)")
		csvDir    = flag.String("csv", "", "also write each table as CSV into this directory")
		quiet     = flag.Bool("quiet", false, "suppress progress output")
		only      = flag.String("only", "", "comma-separated dataset names to restrict the testbed to (e.g. hics-14d)")
		mdPath    = flag.String("md", "", "also write all rendered tables as one Markdown report to this file")
		journal   = flag.String("journal", "", "persist completed pipeline cells to this file and resume from it (one file per scale+seed)")
		detectors = flag.String("detectors", "", "comma-separated detector names to restrict pipelines to (LOF, FastABOD, iForest)")
		metric    = flag.String("metric", "map", "effectiveness metric for figures 9/10: map or recall")
		workers   = flag.Int("workers", 0, "inner-loop workers per pipeline cell (0 = GOMAXPROCS); results are identical at any count")
		cacheMB   = flag.Int("cache-mb", 0, "byte budget (MiB) of each detector's shared score memo; LRU-evicts past it (0 = default 256)")
		planeMB   = flag.Int("plane-mb", 0, "byte budget (MiB) of the session's shared neighbourhood plane (0 = default 256)")
		landmarks = flag.Int("landmarks", 0, "landmark count of the pruned candidate tier on wide views (0 = automatic); results are bit-identical at any value")
		noPrune   = flag.Bool("no-prune", false, "disable the landmark-pruned candidate tier (wide views fall back to the plain exhaustive scan)")
		quantTile = flag.Int("quant", 0, "candidate tile size of the quantized prefilter under the kNN tiers (0 = default 64); results are bit-identical at any value")
		noQuant   = flag.Bool("no-quant", false, "disable the quantized prefilter (candidates go straight to the exact distance kernel)")
		stats     = flag.Bool("stats", false, "print neighbourhood-plane and landmark-prune statistics (hits, dedup factor, scan fraction) to stderr when the run ends")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (inspect with go tool pprof)")
		memProf   = flag.String("memprofile", "", "write a post-GC heap profile to this file when the run ends")

		streamWindow = flag.Int("stream-window", 256, "stream experiment: sliding window size")
		streamStride = flag.Int("stream-stride", 64, "stream experiment: points between evaluations")
		streamDim    = flag.Int("stream-dim", 20, "stream experiment: feature count of the synthetic stream")
		streamPoints = flag.Int("stream-points", 0, "stream experiment: total points to push (0 = window + 50 strides)")
		streamSlack  = flag.Int("stream-slack", -1, "stream experiment: engine reservoir slack (-1 = default)")
	)
	flag.Parse()

	// The landmark tier is process-wide state (every index NewIndex builds
	// consults it), so it is configured once, before any session exists.
	neighbors.SetPruneConfig(neighbors.PruneConfig{
		Landmarks: *landmarks,
		Disabled:  *noPrune,
		QuantTile: *quantTile,
		NoQuant:   *noQuant,
	})

	// anexbench keeps the raw clix primitives instead of clix.Main: profiles
	// must flush on every exit path (os.Exit skips defers) and the resume
	// hint belongs after the "interrupted" line.
	ctx, stop := clix.Context()
	defer stop()

	stopProfiles, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		os.Exit(clix.Report("anexbench", err))
	}

	if strings.EqualFold(*exp, "stream") {
		err = runStream(ctx, *seed, *streamWindow, *streamStride, *streamDim, *streamPoints, *streamSlack, *workers, *stats)
	} else {
		err = run(ctx, *scaleFlag, *seed, *exp, *csvDir, *quiet, *only, *mdPath, *journal, *detectors, *metric, *workers, *cacheMB, *planeMB, *stats)
	}
	// An interrupted run still yields a usable CPU profile.
	stopProfiles()
	code := clix.Report("anexbench", err)
	if code == 130 && *journal != "" {
		fmt.Fprintf(os.Stderr, "re-run the same command to resume from %s\n", *journal)
	}
	os.Exit(code)
}

// startProfiles begins CPU profiling and arranges a heap snapshot, returning
// a stop function that flushes whichever profiles were requested. Empty
// paths disable the corresponding profile.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			fmt.Fprintf(os.Stderr, "wrote CPU profile to %s\n", cpuPath)
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "anexbench: memprofile:", err)
				return
			}
			// Collect garbage first so the snapshot shows live retention,
			// not whatever the last scoring loop left unswept.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "anexbench: memprofile:", err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote heap profile to %s\n", memPath)
		}
	}, nil
}

func run(ctx context.Context, scaleFlag string, seed int64, exp, csvDir string, quiet bool, only, mdPath, journalPath, detectors, metric string, workers, cacheMB, planeMB int, stats bool) error {
	scale, err := synth.ParseScale(scaleFlag)
	if err != nil {
		return err
	}
	var progress io.Writer = os.Stderr
	if quiet {
		progress = nil
	}
	var filter []string
	if only != "" {
		for _, name := range strings.Split(only, ",") {
			filter = append(filter, strings.TrimSpace(name))
		}
	}
	if metric != "map" && metric != "recall" {
		return fmt.Errorf("unknown metric %q (want map or recall)", metric)
	}
	var detFilter []string
	if detectors != "" {
		for _, name := range strings.Split(detectors, ",") {
			detFilter = append(detFilter, strings.TrimSpace(name))
		}
	}
	var journal *pipeline.Journal
	if journalPath != "" {
		var err error
		journal, err = pipeline.OpenJournal(journalPath)
		if err != nil {
			return err
		}
		defer journal.Close()
		if n := journal.Len(); n > 0 {
			fmt.Fprintf(os.Stderr, "resuming: %d cells journalled in %s\n", n, journalPath)
		}
	}
	session, err := experiments.NewSession(ctx, experiments.Config{
		Scale:          scale,
		Seed:           seed,
		Progress:       progress,
		DatasetFilter:  filter,
		Journal:        journal,
		DetectorFilter: detFilter,
		UseMeanRecall:  metric == "recall",
		Workers:        workers,
		CacheBytes:     int64(cacheMB) << 20,
		PlaneBytes:     int64(planeMB) << 20,
	})
	if err != nil {
		return err
	}

	type gen struct {
		name  string
		build func(context.Context) *experiments.Table
	}
	gens := []gen{
		{"table1", func(context.Context) *experiments.Table { return session.Table1() }},
		{"figure8", func(context.Context) *experiments.Table { return session.Figure8() }},
		{"figure9", session.Figure9},
		{"figure10", session.Figure10},
		{"figure11", session.Figure11},
		{"table2", session.Table2},
		{"ablation", session.Ablations},
		{"conformance", session.Conformance},
	}

	var md *os.File
	if mdPath != "" {
		var err error
		md, err = os.Create(mdPath)
		if err != nil {
			return err
		}
		defer md.Close()
		fmt.Fprintf(md, "# anexbench report (scale %s, seed %d)\n\n", scale, seed)
	}

	want := strings.ToLower(exp)
	matched := false
	for _, g := range gens {
		if want != "all" && want != g.name {
			continue
		}
		matched = true
		table := g.build(ctx)
		fmt.Println()
		if err := table.Render(os.Stdout); err != nil {
			return err
		}
		if md != nil {
			if err := table.RenderMarkdown(md); err != nil {
				return err
			}
		}
		if csvDir != "" {
			if err := os.MkdirAll(csvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(csvDir, g.name+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := table.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		// An interrupt mid-experiment leaves the remaining tables full of
		// cancelled cells; render what we have and stop cleanly.
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q (want all, table1, figure8, figure9, figure10, figure11, table2, ablation or conformance)", exp)
	}
	if stats {
		fmt.Fprintf(os.Stderr, "neighbourhood plane: %s\n", session.PlaneStats())
		if pt := neighbors.PruneTotals(); pt.Indexes > 0 {
			fmt.Fprintf(os.Stderr, "landmark prune: %d indexes (%d landmarks, build %v), scanned %d of %d candidates (scan fraction %.3f, %d skipped)\n",
				pt.Indexes, pt.Landmarks, pt.BuildTime, pt.Scanned, pt.Candidates, pt.ScanFraction(), pt.Skipped)
			if pt.QuantCandidates > 0 {
				fmt.Fprintf(os.Stderr, "quant prefilter: %d code bytes, rejected %d of %d bound-tested candidates (survivor fraction %.3f)\n",
					pt.CodeBytes, pt.QuantRejected, pt.QuantCandidates, pt.SurvivorFraction())
			} else {
				fmt.Fprintln(os.Stderr, "quant prefilter: never engaged (disabled, views too small, or uncodeable)")
			}
		} else {
			fmt.Fprintln(os.Stderr, "landmark prune: no wide views routed through the tier")
		}
	}
	return nil
}

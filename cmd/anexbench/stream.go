package main

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"anex/internal/detector"
	"anex/internal/neighbors"
	"anex/internal/stream"
)

// runStream is the -exp stream arm: one synthetic Gaussian stream pushed
// through two monitors that differ only in Config.NoIncremental. It prints
// the per-arm wall time and their ratio (the self-normalising speedup the
// repo's check.sh gates at ≤ 0.6 via the stream benchmark pair), and fails
// if the two alert streams are not identical — the incremental engine's
// bit-identicality contract, enforced on every benchmark run.
func runStream(ctx context.Context, seed int64, window, stride, dim, points, slack, workers int, stats bool) error {
	if window < stream.MinWindowSize {
		return fmt.Errorf("stream window %d too small (need ≥ %d)", window, stream.MinWindowSize)
	}
	if stride < 1 || dim < 1 {
		return fmt.Errorf("stream stride and dim must be positive")
	}
	if points <= 0 {
		points = window + 50*stride
	}
	rng := rand.New(rand.NewSource(seed))
	data := make([][]float64, points)
	for i := range data {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		data[i] = p
	}

	type armResult struct {
		alerts  []string
		elapsed time.Duration
		evals   int
		st      stream.StreamStats
	}
	arm := func(noInc bool) (armResult, error) {
		plane := neighbors.NewPlane(0)
		det := &detector.LOF{K: 15, Workers: workers}
		det.SetNeighbors(plane)
		cfg := stream.Config{
			WindowSize:    window,
			Stride:        stride,
			ZThreshold:    stream.Threshold(3),
			Detector:      det,
			Plane:         plane,
			NoIncremental: noInc,
			Workers:       workers,
		}
		if slack >= 0 {
			cfg.Slack = stream.Slack(slack)
		}
		m, err := stream.NewMonitor(cfg)
		if err != nil {
			return armResult{}, err
		}
		defer m.Close()
		var res armResult
		start := time.Now()
		for _, p := range data {
			alerts, err := m.Push(ctx, p)
			if err != nil {
				return armResult{}, err
			}
			for _, a := range alerts {
				res.alerts = append(res.alerts,
					fmt.Sprintf("%d:%x:%x", a.Sequence, math.Float64bits(a.Score), math.Float64bits(a.ZScore)))
			}
		}
		res.elapsed = time.Since(start)
		res.evals = m.Evaluations()
		res.st = m.Stats()
		return res, nil
	}

	rebuild, err := arm(true)
	if err != nil {
		return fmt.Errorf("stream rebuild arm: %w", err)
	}
	inc, err := arm(false)
	if err != nil {
		return fmt.Errorf("stream incremental arm: %w", err)
	}

	if len(inc.alerts) != len(rebuild.alerts) {
		return fmt.Errorf("stream arms diverged: %d incremental alerts vs %d rebuild", len(inc.alerts), len(rebuild.alerts))
	}
	for i := range inc.alerts {
		if inc.alerts[i] != rebuild.alerts[i] {
			return fmt.Errorf("stream arms diverged at alert %d: %s vs %s", i, inc.alerts[i], rebuild.alerts[i])
		}
	}

	ratio := math.NaN()
	if rebuild.elapsed > 0 {
		ratio = float64(inc.elapsed) / float64(rebuild.elapsed)
	}
	fmt.Printf("stream workload: %d points, window %d, stride %d, %dd, LOF k=15, workers %d\n",
		points, window, stride, dim, workers)
	fmt.Printf("  rebuild:     %10v  (%d evaluations)\n", rebuild.elapsed, rebuild.evals)
	fmt.Printf("  incremental: %10v  (%d evaluations, %d alerts, identical to rebuild)\n",
		inc.elapsed, inc.evals, len(inc.alerts))
	fmt.Printf("  ratio: %.3f (lower is better; <1 means the incremental engine wins)\n", ratio)
	if stats {
		fmt.Fprintf(os.Stderr, "stream stats: %s\n", inc.st)
	}
	return nil
}

package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunUnknownScale(t *testing.T) {
	if err := run(context.Background(), "huge", 1, "table1", "", true, "", "", "", "", "map", 1, 0, 0, false); err == nil {
		t.Error("unknown scale should fail")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(context.Background(), "small", 1, "figure99", "", true, "", "", "", "", "map", 1, 0, 0, false); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunTable1AndCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("generates the small-scale testbed")
	}
	dir := t.TempDir()
	// Capture stdout.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(context.Background(), "small", 1, "table1", dir, true, "", "", "", "", "map", 1, 0, 0, false)
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	out := make([]byte, 1<<16)
	n, _ := r.Read(out)
	text := string(out[:n])
	if !strings.Contains(text, "Table 1") || !strings.Contains(text, "hics-8d") {
		t.Errorf("unexpected output:\n%s", text)
	}
	csvPath := filepath.Join(dir, "table1.csv")
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
	if !strings.Contains(string(data), "dataset,") {
		t.Errorf("CSV malformed: %s", data)
	}
	// figure8 shares the session-generation path.
	if err := run(context.Background(), "small", 1, "figure8", "", true, "", "", "", "", "map", 1, 0, 0, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunDatasetFilter(t *testing.T) {
	if testing.Short() {
		t.Skip("generates datasets")
	}
	// A single-dataset filter skips generating the rest (in particular
	// the real-like ground-truth derivation).
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(context.Background(), "small", 1, "table1", "", true, "hics-8d", "", "", "", "map", 1, 0, 0, false)
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	buf := make([]byte, 1<<16)
	n, _ := r.Read(buf)
	text := string(buf[:n])
	if !strings.Contains(text, "hics-8d") || strings.Contains(text, "hics-12d") {
		t.Errorf("filter not applied:\n%s", text)
	}
	if err := run(context.Background(), "small", 1, "table1", "", true, "no-such-dataset", "", "", "", "map", 1, 0, 0, false); err == nil {
		t.Error("unmatched filter should fail")
	}
}

func TestRunMarkdownReport(t *testing.T) {
	if testing.Short() {
		t.Skip("generates datasets")
	}
	dir := t.TempDir()
	mdPath := filepath.Join(dir, "report.md")
	old := os.Stdout
	_, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(context.Background(), "small", 1, "table1", "", true, "hics-8d", mdPath, "", "", "map", 1, 0, 0, false)
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	data, err := os.ReadFile(mdPath)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.Contains(text, "# anexbench report") || !strings.Contains(text, "### Table 1") {
		t.Errorf("markdown report malformed:\n%s", text)
	}
}

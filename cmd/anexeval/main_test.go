package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anex"
)

// writeTestbed generates a small planted dataset + ground truth on disk.
func writeTestbed(t *testing.T) (dataPath, gtPath string) {
	t.Helper()
	ds, gt, err := anex.GenerateSubspaceOutliers(anex.SubspaceOutlierConfig{
		Name: "eval-test", TotalDims: 6, SubspaceDims: []int{2}, N: 150,
		OutliersPerSubspace: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	dataPath = filepath.Join(dir, "data.csv")
	if err := ds.SaveCSV(dataPath); err != nil {
		t.Fatal(err)
	}
	gtPath = filepath.Join(dir, "gt.json")
	f, err := os.Create(gtPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := gt.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return dataPath, gtPath
}

func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<17)
	n, _ := r.Read(buf)
	return string(buf[:n]), runErr
}

func TestRunEvaluatesGrid(t *testing.T) {
	dataPath, gtPath := writeTestbed(t)
	out, err := captureStdout(t, func() error {
		return run(context.Background(), dataPath, gtPath, "2", 1, 1, 10, 0, 0, false, "", 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Beam_FX", "RefOut", "LookOut", "HiCS_FX", "LOF", "iForest", "12 pipeline cells"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Beam+LOF must find the single planted pair: its MAP row should be
	// 1.000 on this easy dataset.
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "Beam_FX") && strings.Contains(line, "LOF") && strings.Contains(line, "1.000") {
			found = true
		}
	}
	if !found {
		t.Errorf("Beam+LOF not at MAP 1.000:\n%s", out)
	}
}

func TestRunArgumentValidation(t *testing.T) {
	dataPath, gtPath := writeTestbed(t)
	cases := []struct {
		name string
		fn   func() error
	}{
		{"missing data", func() error { return run(context.Background(), "", gtPath, "2", 1, 1, 0, 0, 0, false, "", 0) }},
		{"missing gt", func() error { return run(context.Background(), dataPath, "", "2", 1, 1, 0, 0, 0, false, "", 0) }},
		{"bad dim", func() error { return run(context.Background(), dataPath, gtPath, "1", 1, 1, 0, 0, 0, false, "", 0) }},
		{"dim too high", func() error { return run(context.Background(), dataPath, gtPath, "99", 1, 1, 0, 0, 0, false, "", 0) }},
		{"nonsense dim", func() error { return run(context.Background(), dataPath, gtPath, "x", 1, 1, 0, 0, 0, false, "", 0) }},
		{"missing file", func() error { return run(context.Background(), "/nope.csv", gtPath, "2", 1, 1, 0, 0, 0, false, "", 0) }},
		{"missing gt file", func() error { return run(context.Background(), dataPath, "/nope.json", "2", 1, 1, 0, 0, 0, false, "", 0) }},
	}
	for _, c := range cases {
		if _, err := captureStdout(t, c.fn); err == nil {
			t.Errorf("%s should fail", c.name)
		}
	}
}

func TestRunJournalResume(t *testing.T) {
	dataPath, gtPath := writeTestbed(t)
	journalPath := filepath.Join(t.TempDir(), "eval.journal")
	// The resume note goes to stderr; capture both streams.
	captureBoth := func(fn func() error) (stdout, stderr string, err error) {
		oldErr := os.Stderr
		re, we, perr := os.Pipe()
		if perr != nil {
			t.Fatal(perr)
		}
		os.Stderr = we
		stdout, err = captureStdout(t, fn)
		we.Close()
		os.Stderr = oldErr
		buf := make([]byte, 1<<16)
		n, _ := re.Read(buf)
		return stdout, string(buf[:n]), err
	}
	first, firstErr, err := captureBoth(func() error {
		return run(context.Background(), dataPath, gtPath, "2", 1, 1, 10, 0, 0, false, journalPath, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(firstErr, "resuming:") {
		t.Errorf("fresh journal claimed a resume:\n%s", firstErr)
	}
	second, secondErr, err := captureBoth(func() error {
		return run(context.Background(), dataPath, gtPath, "2", 1, 1, 10, 0, 0, false, journalPath, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(secondErr, "resuming: 12 cells") {
		t.Errorf("second run did not resume from the journal:\n%s", secondErr)
	}
	// The resumed run reproduces the same result table, row for row — the
	// journal replays recorded timings too. Only the per-invocation total
	// line below the table may differ.
	tableOf := func(out string) string {
		start := strings.Index(out, "dim")
		end := strings.Index(out, "total ")
		if start < 0 || end < 0 || end < start {
			return out
		}
		return out[start:end]
	}
	if tableOf(first) != tableOf(second) {
		t.Errorf("resumed table differs:\n--- first\n%s\n--- second\n%s", first, second)
	}
}

// Command anexeval runs the paper's full detector × explainer pipeline grid
// (Figure 7) against YOUR dataset: a CSV of numeric features plus a
// ground-truth JSON mapping outlier indices to their relevant subspaces
// (the format written by anexgen / dataset.GroundTruth.WriteJSON). It
// prints MAP, mean recall and runtime per pipeline — the tool for deciding
// which detector/explainer combination fits a new dataset.
//
// Usage:
//
//	anexeval -data d.csv -gt d.groundtruth.json [-dims 2,3] [-seed N]
//	         [-workers N] [-topk 30]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"anex"
)

func main() {
	var (
		dataPath = flag.String("data", "", "CSV dataset (header row with feature names)")
		gtPath   = flag.String("gt", "", "ground-truth JSON (point index → relevant subspace keys)")
		dims     = flag.String("dims", "2", "comma-separated explanation dimensionalities")
		seed     = flag.Int64("seed", 1, "random seed for stochastic algorithms")
		workers  = flag.Int("workers", 0, "parallel pipeline workers (0 = GOMAXPROCS)")
		topK     = flag.Int("topk", 0, "result-list bound per explainer (0 = paper default 100)")
	)
	flag.Parse()

	if err := run(*dataPath, *gtPath, *dims, *seed, *workers, *topK); err != nil {
		fmt.Fprintln(os.Stderr, "anexeval:", err)
		os.Exit(1)
	}
}

func run(dataPath, gtPath, dimsArg string, seed int64, workers, topK int) error {
	if dataPath == "" || gtPath == "" {
		return fmt.Errorf("both -data and -gt are required")
	}
	ds, err := anex.LoadCSV(strings.TrimSuffix(dataPath, ".csv"), dataPath)
	if err != nil {
		return err
	}
	f, err := os.Open(gtPath)
	if err != nil {
		return err
	}
	gt, err := readGroundTruth(f)
	f.Close()
	if err != nil {
		return err
	}
	if gt.NumOutliers() == 0 {
		return fmt.Errorf("ground truth contains no outliers")
	}
	var dims []int
	for _, part := range strings.Split(dimsArg, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || d < 2 || d > ds.D() {
			return fmt.Errorf("bad dimensionality %q (want 2..%d)", part, ds.D())
		}
		dims = append(dims, d)
	}

	fmt.Printf("%s: %d points × %d features, %d outliers; dims %v\n\n",
		ds.Name(), ds.N(), ds.D(), gt.NumOutliers(), dims)

	start := time.Now()
	results := anex.RunGrid(anex.GridSpec{
		Dataset:     ds,
		GroundTruth: gt,
		Dims:        dims,
		Seed:        seed,
		Options:     anex.PipelineOptions{TopK: topK},
		Cached:      true,
		Workers:     workers,
	})
	fmt.Printf("%-4s %-10s %-9s %8s %8s %12s %12s %12s\n", "dim", "explainer", "detector", "MAP", "recall", "runtime", "scoring", "search")
	fmt.Println(strings.Repeat("-", 82))
	for _, r := range results {
		if r.Err != nil {
			fmt.Printf("%-4d %-10s %-9s %8s %8s %12s %12s %12s  (%v)\n", r.TargetDim, r.Explainer, r.Detector, "err", "err", "-", "-", "-", r.Err)
			continue
		}
		if r.PointsEvaluated == 0 {
			fmt.Printf("%-4d %-10s %-9s %8s %8s %12s %12s %12s\n", r.TargetDim, r.Explainer, r.Detector, "-", "-", "-", "-", "-")
			continue
		}
		fmt.Printf("%-4d %-10s %-9s %8.3f %8.3f %12s %12s %12s\n",
			r.TargetDim, r.Explainer, r.Detector, r.MAP, r.MeanRecall,
			r.Duration.Round(time.Millisecond), r.ScoringTime.Round(time.Millisecond), r.SearchTime.Round(time.Millisecond))
	}
	fmt.Printf("\ntotal %s over %d pipeline cells\n", time.Since(start).Round(time.Millisecond), len(results))
	return nil
}

// readGroundTruth parses the JSON format of dataset.GroundTruth.
func readGroundTruth(f *os.File) (*anex.GroundTruth, error) {
	return anex.ReadGroundTruthJSON(f)
}

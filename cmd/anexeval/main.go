// Command anexeval runs the paper's full detector × explainer pipeline grid
// (Figure 7) against YOUR dataset: a CSV of numeric features plus a
// ground-truth JSON mapping outlier indices to their relevant subspaces
// (the format written by anexgen / dataset.GroundTruth.WriteJSON). It
// prints MAP, mean recall and runtime per pipeline — the tool for deciding
// which detector/explainer combination fits a new dataset.
//
// Interrupting a run (SIGINT/SIGTERM) stops scheduling new cells, prints
// the cells that finished, and — with -journal — leaves a checkpoint file
// from which an identical re-invocation resumes, skipping completed cells.
//
// Usage:
//
//	anexeval -data d.csv -gt d.groundtruth.json [-dims 2,3] [-seed N]
//	         [-workers N] [-topk 30] [-cache-mb 256] [-plane-mb 256]
//	         [-no-sched] [-journal run.journal] [-cell-timeout 5m]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"anex"
	"anex/internal/clix"
)

func main() {
	var (
		dataPath    = flag.String("data", "", "CSV dataset (header row with feature names)")
		gtPath      = flag.String("gt", "", "ground-truth JSON (point index → relevant subspace keys)")
		dims        = flag.String("dims", "2", "comma-separated explanation dimensionalities")
		seed        = flag.Int64("seed", 1, "random seed for stochastic algorithms")
		workers     = flag.Int("workers", 0, "parallel pipeline workers (0 = GOMAXPROCS)")
		topK        = flag.Int("topk", 0, "result-list bound per explainer (0 = paper default 100)")
		cacheMB     = flag.Int("cache-mb", 0, "byte budget (MiB) of each detector's shared score memo; LRU-evicts past it (0 = default 256)")
		planeMB     = flag.Int("plane-mb", 0, "byte budget (MiB) of the grid's shared neighbourhood plane (0 = default 256)")
		noSched     = flag.Bool("no-sched", false, "disable cost-aware cell scheduling; cells dispatch in deterministic order (results are identical either way)")
		journalPath = flag.String("journal", "", "checkpoint completed cells to this file and resume from it")
		cellTimeout = flag.Duration("cell-timeout", 0, "per-cell deadline (0 = none); timed-out cells report an error, the rest of the grid completes")
	)
	flag.Parse()

	clix.Main("anexeval", func(ctx context.Context) error {
		return run(ctx, *dataPath, *gtPath, *dims, *seed, *workers, *topK, *cacheMB, *planeMB, *noSched, *journalPath, *cellTimeout)
	})
}

func run(ctx context.Context, dataPath, gtPath, dimsArg string, seed int64, workers, topK, cacheMB, planeMB int, noSched bool, journalPath string, cellTimeout time.Duration) error {
	if dataPath == "" || gtPath == "" {
		return fmt.Errorf("both -data and -gt are required")
	}
	ds, err := anex.LoadCSV(strings.TrimSuffix(dataPath, ".csv"), dataPath)
	if err != nil {
		return err
	}
	f, err := os.Open(gtPath)
	if err != nil {
		return err
	}
	gt, err := readGroundTruth(f)
	f.Close()
	if err != nil {
		return err
	}
	if gt.NumOutliers() == 0 {
		return fmt.Errorf("ground truth contains no outliers")
	}
	var dims []int
	for _, part := range strings.Split(dimsArg, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || d < 2 || d > ds.D() {
			return fmt.Errorf("bad dimensionality %q (want 2..%d)", part, ds.D())
		}
		dims = append(dims, d)
	}

	var journal *anex.Journal
	if journalPath != "" {
		journal, err = anex.OpenJournal(journalPath)
		if err != nil {
			return err
		}
		defer journal.Close()
		if n := journal.Len(); n > 0 {
			fmt.Fprintf(os.Stderr, "resuming: %d cells journalled in %s\n", n, journalPath)
		}
	}

	fmt.Printf("%s: %d points × %d features, %d outliers; dims %v\n\n",
		ds.Name(), ds.N(), ds.D(), gt.NumOutliers(), dims)

	// A custom budget needs a private plane; otherwise the grid keeps the
	// process-wide shared one the detector constructors wired in.
	var plane *anex.NeighborhoodPlane
	if planeMB > 0 {
		plane = anex.NewNeighborhoodPlane(int64(planeMB) << 20)
	}

	start := time.Now()
	results, jerr := anex.RunGrid(ctx, anex.GridSpec{
		Dataset:     ds,
		GroundTruth: gt,
		Dims:        dims,
		Seed:        seed,
		Options:     anex.PipelineOptions{TopK: topK, CacheBytes: int64(cacheMB) << 20},
		Cached:      true,
		Plane:       plane,
		NoSched:     noSched,
		Workers:     workers,
		Journal:     journal,
		CellTimeout: cellTimeout,
	})
	fmt.Printf("%-4s %-10s %-9s %8s %8s %12s %12s %12s\n", "dim", "explainer", "detector", "MAP", "recall", "runtime", "scoring", "search")
	fmt.Println(strings.Repeat("-", 82))
	completed := 0
	for _, r := range results {
		if r.Err != nil {
			fmt.Printf("%-4d %-10s %-9s %8s %8s %12s %12s %12s  (%v)\n", r.TargetDim, r.Explainer, r.Detector, "err", "err", "-", "-", "-", r.Err)
			continue
		}
		completed++
		if r.PointsEvaluated == 0 {
			fmt.Printf("%-4d %-10s %-9s %8s %8s %12s %12s %12s\n", r.TargetDim, r.Explainer, r.Detector, "-", "-", "-", "-", "-")
			continue
		}
		fmt.Printf("%-4d %-10s %-9s %8.3f %8.3f %12s %12s %12s\n",
			r.TargetDim, r.Explainer, r.Detector, r.MAP, r.MeanRecall,
			r.Duration.Round(time.Millisecond), r.ScoringTime.Round(time.Millisecond), r.SearchTime.Round(time.Millisecond))
	}
	fmt.Printf("\ntotal %s over %d pipeline cells (%d completed)\n", time.Since(start).Round(time.Millisecond), len(results), completed)
	if jerr != nil {
		return fmt.Errorf("journal: %w", jerr)
	}
	if err := ctx.Err(); err != nil {
		if journalPath != "" {
			fmt.Fprintf(os.Stderr, "interrupted: re-run the same command to resume from %s\n", journalPath)
		}
		return err
	}
	return nil
}

// readGroundTruth parses the JSON format of dataset.GroundTruth.
func readGroundTruth(f *os.File) (*anex.GroundTruth, error) {
	return anex.ReadGroundTruthJSON(f)
}

package main

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"anex"
)

// writeTestCSV builds the quickstart geometry (coupled pair + noise) with
// an anomaly at index 0 and saves it as CSV.
func writeTestCSV(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	const n = 150
	rows := make([][]float64, n)
	for i := range rows {
		base := 0.25
		if rng.Intn(2) == 1 {
			base = 0.75
		}
		rows[i] = []float64{
			base + rng.NormFloat64()*0.03,
			base + rng.NormFloat64()*0.03,
			rng.Float64(),
			rng.Float64(),
		}
	}
	rows[0] = []float64{0.25, 0.75, 0.5, 0.5}
	ds, err := anex.FromRows("test", rows, []string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := ds.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<16)
	n, _ := r.Read(buf)
	return string(buf[:n]), runErr
}

func TestRunBeamExplainsPlantedPair(t *testing.T) {
	path := writeTestCSV(t)
	out, err := captureStdout(t, func() error {
		return run(context.Background(), path, "0", "beam", "lof", 2, 3, 1, false, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "point 0") || !strings.Contains(out, "{a, b}") {
		t.Errorf("output missing planted pair:\n%s", out)
	}
}

func TestRunSummaryAlgorithms(t *testing.T) {
	path := writeTestCSV(t)
	for _, algo := range []string{"lookout", "hics"} {
		out, err := captureStdout(t, func() error {
			return run(context.Background(), path, "0", algo, "lof", 2, 3, 1, false, 1)
		})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(out, "summary for points") {
			t.Errorf("%s output: %s", algo, out)
		}
	}
}

func TestRunAllDetectors(t *testing.T) {
	path := writeTestCSV(t)
	for _, det := range []string{"lof", "abod", "iforest"} {
		if _, err := captureStdout(t, func() error {
			return run(context.Background(), path, "0", "refout", det, 2, 2, 1, false, 1)
		}); err != nil {
			t.Fatalf("%s: %v", det, err)
		}
	}
}

func TestRunArgumentErrors(t *testing.T) {
	path := writeTestCSV(t)
	cases := []struct {
		name string
		fn   func() error
	}{
		{"missing data", func() error { return run(context.Background(), "", "0", "beam", "lof", 2, 3, 1, false, 1) }},
		{"missing points", func() error { return run(context.Background(), path, "", "beam", "lof", 2, 3, 1, false, 1) }},
		{"bad point", func() error { return run(context.Background(), path, "x", "beam", "lof", 2, 3, 1, false, 1) }},
		{"bad algo", func() error { return run(context.Background(), path, "0", "nope", "lof", 2, 3, 1, false, 1) }},
		{"bad detector", func() error { return run(context.Background(), path, "0", "beam", "nope", 2, 3, 1, false, 1) }},
		{"missing file", func() error {
			return run(context.Background(), "/nonexistent.csv", "0", "beam", "lof", 2, 3, 1, false, 1)
		}},
	}
	for _, c := range cases {
		if _, err := captureStdout(t, c.fn); err == nil {
			t.Errorf("%s should fail", c.name)
		}
	}
}

func TestRunWithPlot(t *testing.T) {
	path := writeTestCSV(t)
	out, err := captureStdout(t, func() error {
		return run(context.Background(), path, "0", "beam", "lof", 2, 3, 1, true, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "✗") {
		t.Errorf("plot marker missing:\n%s", out)
	}
	if !strings.Contains(out, "└") {
		t.Errorf("plot frame missing:\n%s", out)
	}
}

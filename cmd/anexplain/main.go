// Command anexplain explains the outlyingness of points in a CSV dataset:
// it ranks, for each requested point, the feature subspaces where that
// point deviates most from the rest of the data.
//
// Usage:
//
//	anexplain -data data.csv -points 17,42 [-algo beam|refout|lookout|hics]
//	          [-detector lof|abod|iforest] [-dim 2] [-top 5] [-seed N]
//	          [-workers N]
//
// Point algorithms (beam, refout) explain each point individually; summary
// algorithms (lookout, hics) produce one ranked list jointly covering all
// the points.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"anex"
)

func main() {
	var (
		dataPath = flag.String("data", "", "CSV dataset (header row with feature names)")
		points   = flag.String("points", "", "comma-separated point indices to explain")
		algo     = flag.String("algo", "beam", "explanation algorithm: beam, refout, lookout or hics")
		detName  = flag.String("detector", "lof", "outlier detector: lof, abod or iforest")
		dim      = flag.Int("dim", 2, "explanation dimensionality")
		top      = flag.Int("top", 5, "number of subspaces to print")
		seed     = flag.Int64("seed", 1, "random seed for stochastic algorithms")
		plot     = flag.Bool("plot", false, "render the top explaining subspace of each point as a terminal scatter plot (2d explanations only)")
		workers  = flag.Int("workers", 0, "detector scoring workers (0 = GOMAXPROCS); results are identical at any count")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err := run(ctx, *dataPath, *points, *algo, *detName, *dim, *top, *seed, *plot, *workers)
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "anexplain: interrupted")
		os.Exit(130)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "anexplain:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, dataPath, pointsArg, algo, detName string, dim, top int, seed int64, plotTop bool, workers int) error {
	if dataPath == "" {
		return fmt.Errorf("missing -data")
	}
	if pointsArg == "" {
		return fmt.Errorf("missing -points")
	}
	ds, err := anex.LoadCSV(strings.TrimSuffix(dataPath, ".csv"), dataPath)
	if err != nil {
		return err
	}
	var points []int
	for _, part := range strings.Split(pointsArg, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad point index %q: %w", part, err)
		}
		points = append(points, p)
	}

	w := anex.ResolveWorkers(workers)
	var det anex.Detector
	switch detName {
	case "lof":
		det = &anex.LOF{Workers: w}
	case "abod":
		det = &anex.FastABOD{Workers: w}
	case "iforest":
		det = &anex.IsolationForest{Seed: seed, Workers: w}
	default:
		return fmt.Errorf("unknown detector %q (want lof, abod or iforest)", detName)
	}
	det = anex.CachedDetector(det)

	printList := func(list []anex.ScoredSubspace) {
		if len(list) > top {
			list = list[:top]
		}
		for rank, s := range list {
			names := make([]string, s.Subspace.Dim())
			for i, f := range s.Subspace {
				names[i] = ds.FeatureName(f)
			}
			fmt.Printf("  %2d. {%s}  score %.4f\n", rank+1, strings.Join(names, ", "), s.Score)
		}
	}

	maybePlot := func(list []anex.ScoredSubspace, highlight []int, title string) error {
		if !plotTop || len(list) == 0 || list[0].Subspace.Dim() != 2 {
			return nil
		}
		return anex.PlotSubspace(os.Stdout, ds, list[0].Subspace, anex.PlotOptions{
			Highlight: highlight,
			Title:     title,
		})
	}

	switch algo {
	case "beam", "refout":
		var explainer anex.PointExplainer
		if algo == "beam" {
			explainer = anex.NewBeamFX(det)
		} else {
			explainer = anex.NewRefOut(det, seed)
		}
		for _, p := range points {
			list, err := explainer.ExplainPoint(ctx, ds, p, dim)
			if err != nil {
				return err
			}
			fmt.Printf("point %d — %dd subspaces ranked by %s with %s:\n", p, dim, explainer.Name(), det.Name())
			printList(list)
			if err := maybePlot(list, []int{p}, fmt.Sprintf("point %d in its top subspace", p)); err != nil {
				return err
			}
		}
	case "lookout", "hics":
		var summarizer anex.Summarizer
		if algo == "lookout" {
			summarizer = anex.NewLookOut(det)
		} else {
			summarizer = anex.NewHiCSFX(det, seed)
		}
		list, err := summarizer.Summarize(ctx, ds, points, dim)
		if err != nil {
			return err
		}
		fmt.Printf("summary for points %v — %dd subspaces ranked by %s with %s:\n", points, dim, summarizer.Name(), det.Name())
		printList(list)
		if err := maybePlot(list, points, "points of interest in the top summary subspace"); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown algorithm %q (want beam, refout, lookout or hics)", algo)
	}
	return nil
}

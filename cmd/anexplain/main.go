// Command anexplain explains the outlyingness of points in a CSV dataset:
// it ranks, for each requested point, the feature subspaces where that
// point deviates most from the rest of the data.
//
// Usage:
//
//	anexplain -data data.csv -points 17,42 [-algo beam|refout|lookout|hics]
//	          [-detector lof|abod|iforest] [-dim 2] [-top 5] [-seed N]
//	          [-workers N]
//
// Point algorithms (beam, refout) explain each point individually; summary
// algorithms (lookout, hics) produce one ranked list jointly covering all
// the points.
//
// anexplain is a thin client of the same explanation engine that powers
// the anexd server: it registers the CSV, runs one ExplainRequest, and
// prints the response — so its output is identical, subspace for subspace
// and byte for byte, to what a POST /v1/explain with the same knobs
// returns.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"anex"
	"anex/internal/clix"
	"anex/internal/server"
	"anex/internal/subspace"
)

func main() {
	var (
		dataPath = flag.String("data", "", "CSV dataset (header row with feature names)")
		points   = flag.String("points", "", "comma-separated point indices to explain")
		algo     = flag.String("algo", "beam", "explanation algorithm: beam, refout, lookout or hics")
		detName  = flag.String("detector", "lof", "outlier detector: lof, abod or iforest")
		dim      = flag.Int("dim", 2, "explanation dimensionality")
		top      = flag.Int("top", 5, "number of subspaces to print")
		seed     = flag.Int64("seed", 1, "random seed for stochastic algorithms")
		plot     = flag.Bool("plot", false, "render the top explaining subspace of each point as a terminal scatter plot (2d explanations only)")
		workers  = flag.Int("workers", 0, "detector scoring workers (0 = GOMAXPROCS); results are identical at any count")
	)
	flag.Parse()

	clix.Main("anexplain", func(ctx context.Context) error {
		return run(ctx, *dataPath, *points, *algo, *detName, *dim, *top, *seed, *plot, *workers)
	})
}

func run(ctx context.Context, dataPath, pointsArg, algo, detName string, dim, top int, seed int64, plotTop bool, workers int) error {
	if dataPath == "" {
		return fmt.Errorf("missing -data")
	}
	if pointsArg == "" {
		return fmt.Errorf("missing -points")
	}
	raw, err := os.ReadFile(dataPath)
	if err != nil {
		return err
	}
	var points []int
	for _, part := range strings.Split(pointsArg, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad point index %q: %w", part, err)
		}
		points = append(points, p)
	}

	eng := server.NewEngine(server.EngineConfig{Workers: workers})
	name := strings.TrimSuffix(dataPath, ".csv")
	if _, err := eng.RegisterCSV(name, raw, true); err != nil {
		return err
	}
	resp, err := eng.Explain(ctx, server.ExplainRequest{
		Dataset:  name,
		Points:   points,
		Algo:     algo,
		Detector: detName,
		Dim:      dim,
		Top:      top,
		Seed:     seed,
	})
	if err != nil {
		return err
	}
	return printResponse(eng, resp, points, top, plotTop)
}

// printResponse renders an engine response in the CLI's text format; the
// anexd parity test pins this output against a live server's answer.
func printResponse(eng *server.Engine, resp *server.ExplainResponse, points []int, top int, plotTop bool) error {
	printList := func(list []server.ScoredSubspaceJSON) {
		if len(list) > top {
			list = list[:top]
		}
		for rank, s := range list {
			fmt.Printf("  %2d. {%s}  score %.4f\n", rank+1, strings.Join(s.Names, ", "), s.Score)
		}
	}

	maybePlot := func(list []server.ScoredSubspaceJSON, highlight []int, title string) error {
		if !plotTop || len(list) == 0 || len(list[0].Features) != 2 {
			return nil
		}
		ds, _, ok := eng.Dataset(resp.Dataset)
		if !ok {
			return fmt.Errorf("dataset %q vanished from the engine", resp.Dataset)
		}
		return anex.PlotSubspace(os.Stdout, ds, subspace.Subspace(list[0].Features), anex.PlotOptions{
			Highlight: highlight,
			Title:     title,
		})
	}

	for _, pe := range resp.Points {
		fmt.Printf("point %d — %dd subspaces ranked by %s with %s:\n", pe.Point, resp.Dim, resp.AlgoName, resp.DetectorName)
		printList(pe.Subspaces)
		if err := maybePlot(pe.Subspaces, []int{pe.Point}, fmt.Sprintf("point %d in its top subspace", pe.Point)); err != nil {
			return err
		}
	}
	if resp.Summary != nil {
		fmt.Printf("summary for points %v — %dd subspaces ranked by %s with %s:\n", points, resp.Dim, resp.AlgoName, resp.DetectorName)
		printList(resp.Summary)
		if err := maybePlot(resp.Summary, points, "points of interest in the top summary subspace"); err != nil {
			return err
		}
	}
	return nil
}

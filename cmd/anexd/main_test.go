package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"anex/internal/server"
)

// testCSV builds the quickstart geometry (coupled pair + noise dims) with
// an anomaly at index 0, as CSV text.
func testCSV(n, noiseDims int) string {
	rng := rand.New(rand.NewSource(1))
	var b strings.Builder
	b.WriteString("a,b")
	for f := 0; f < noiseDims; f++ {
		fmt.Fprintf(&b, ",n%d", f)
	}
	b.WriteByte('\n')
	for i := 0; i < n; i++ {
		base := 0.25
		if rng.Intn(2) == 1 {
			base = 0.75
		}
		x, y := base+rng.NormFloat64()*0.03, base+rng.NormFloat64()*0.03
		if i == 0 {
			x, y = 0.25, 0.75
		}
		fmt.Fprintf(&b, "%.6f,%.6f", x, y)
		for f := 0; f < noiseDims; f++ {
			fmt.Fprintf(&b, ",%.6f", rng.Float64())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// startAnexd runs the daemon on a free port and returns its base URL, a
// channel carrying run's error, and the cancel that triggers shutdown.
func startAnexd(t *testing.T, opts options) (string, <-chan error, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	opts.addr = "127.0.0.1:0"
	opts.ready = ready
	if opts.grace == 0 {
		opts.grace = 30 * time.Second
	}
	done := make(chan error, 1)
	go func() { done <- run(ctx, opts) }()
	select {
	case addr := <-ready:
		return "http://" + addr, done, cancel
	case err := <-done:
		cancel()
		t.Fatalf("anexd exited before listening: %v", err)
		return "", nil, nil
	}
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getStats(t *testing.T, base string) server.StatsResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return stats
}

func register(t *testing.T, base, name, csv string) {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/datasets", server.RegisterRequest{Name: name, CSV: csv, Header: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
}

// TestAnexdWarmPathReuse is the headline assertion: the second identical
// explanation must be answered from the shared plane and the score memo —
// dedup factor above 1, zero new kNN computations — and byte-identically.
func TestAnexdWarmPathReuse(t *testing.T) {
	base, done, cancel := startAnexd(t, options{})
	defer func() { cancel(); <-done }()

	register(t, base, "quickstart", testCSV(150, 2))
	req := server.ExplainRequest{Dataset: "quickstart", Points: []int{0}}
	resp1, body1 := postJSON(t, base+"/v1/explain", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("cold explain: %d %s", resp1.StatusCode, body1)
	}
	cold := getStats(t, base)

	resp2, body2 := postJSON(t, base+"/v1/explain", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm explain: %d %s", resp2.StatusCode, body2)
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("warm response differs from cold:\ncold: %s\nwarm: %s", body1, body2)
	}
	warm := getStats(t, base)
	if warm.DedupFactor <= 1 {
		t.Errorf("dedup factor = %.2f after repeat request, want > 1", warm.DedupFactor)
	}
	if warm.Plane.Computations != cold.Plane.Computations {
		t.Errorf("warm request computed %d new kNN structures, want 0",
			warm.Plane.Computations-cold.Plane.Computations)
	}
	if warm.ScoreMemoHits <= cold.ScoreMemoHits {
		t.Errorf("score memo hits %d → %d, want an increase on the warm request",
			cold.ScoreMemoHits, warm.ScoreMemoHits)
	}
	if warm.Datasets != 1 {
		t.Errorf("stats report %d datasets, want 1", warm.Datasets)
	}
	ep := warm.Endpoints["POST /v1/explain"]
	if ep.Count != 2 || ep.Errors != 0 {
		t.Errorf("explain endpoint counters = %+v, want Count 2 Errors 0", ep)
	}
}

// TestAnexdSaturation429 pins load shedding: with a one-token bucket, the
// immediate second request is rejected with 429 and a Retry-After hint.
func TestAnexdSaturation429(t *testing.T) {
	base, done, cancel := startAnexd(t, options{rate: 0.5, burst: 1})
	defer func() { cancel(); <-done }()

	register(t, base, "d", testCSV(60, 1))
	// Registration consumed the bucket's only token; the explain that
	// follows within the refill window must be shed.
	resp, body := postJSON(t, base+"/v1/explain", server.ExplainRequest{Dataset: "d", Points: []int{0}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated explain: %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After header")
	}
	if n := getStats(t, base).Admission.Rejected429; n == 0 {
		t.Error("stats report zero rejected requests after a 429")
	}
}

// TestAnexdConcurrentExplains hammers the gated path under -race: all
// requests either succeed or are shed with 429, nothing hangs or corrupts.
func TestAnexdConcurrentExplains(t *testing.T) {
	base, done, cancel := startAnexd(t, options{maxInflight: 2})
	defer func() { cancel(); <-done }()

	register(t, base, "d", testCSV(150, 2))
	var wg sync.WaitGroup
	var mu sync.Mutex
	codes := map[int]int{}
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			resp, _ := postJSON(t, base+"/v1/explain", server.ExplainRequest{Dataset: "d", Points: []int{p % 5}})
			mu.Lock()
			codes[resp.StatusCode]++
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if codes[http.StatusOK] == 0 {
		t.Fatalf("no request succeeded: %v", codes)
	}
	for code := range codes {
		if code != http.StatusOK && code != http.StatusTooManyRequests {
			t.Errorf("unexpected status %d: %v", code, codes)
		}
	}
}

// TestAnexdGracefulDrainSIGTERM exercises the real signal path: SIGTERM
// while a request is in flight must drain it (the client sees 200) and
// run must return nil — the clean exit-0 shutdown.
func TestAnexdGracefulDrainSIGTERM(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, options{addr: "127.0.0.1:0", maxInflight: 4, grace: 30 * time.Second, ready: ready})
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("anexd exited before listening: %v", err)
	}

	// A deliberately heavy request so it is still running when the signal
	// lands (refout over a wider dataset).
	register(t, base, "slow", testCSV(500, 6))
	type result struct {
		code int
		body []byte
	}
	resc := make(chan result, 1)
	go func() {
		resp, body := postJSON(t, base+"/v1/explain", server.ExplainRequest{
			Dataset: "slow", Points: []int{0, 1, 2}, Algo: "refout", Dim: 2,
		})
		resc <- result{resp.StatusCode, body}
	}()

	// Wait until the request is admitted, then deliver the real signal.
	deadline := time.Now().Add(10 * time.Second)
	for getStats(t, base).Admission.Inflight == 0 {
		if time.Now().After(deadline) {
			t.Log("request never observed in flight; signalling anyway")
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	res := <-resc
	if res.code != http.StatusOK {
		t.Errorf("in-flight request during drain: %d %s, want 200", res.code, res.body)
	}
	if err := <-done; err != nil {
		t.Errorf("run returned %v after SIGTERM, want nil (clean drain)", err)
	}
}

// TestAnexdHealthzAndErrors covers the small contract corners: liveness,
// unknown dataset 404, malformed body 400.
func TestAnexdHealthzAndErrors(t *testing.T) {
	base, done, cancel := startAnexd(t, options{})
	defer func() { cancel(); <-done }()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d, want 200", resp.StatusCode)
	}

	resp2, body := postJSON(t, base+"/v1/explain", server.ExplainRequest{Dataset: "nope", Points: []int{0}})
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown dataset: %d %s, want 404", resp2.StatusCode, body)
	}

	resp3, err := http.Post(base+"/v1/explain", "application/json", strings.NewReader(`{"bogus": true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: %d, want 400", resp3.StatusCode)
	}
}

// TestAnexdDurableRestartRecovery pins the daemon-level recovery loop: a
// graceful restart over the same -data-dir resurrects every registered
// dataset and explains it byte-identically.
func TestAnexdDurableRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	base, done, cancel := startAnexd(t, options{dataDir: dir})

	register(t, base, "alpha", testCSV(90, 2))
	register(t, base, "beta", testCSV(80, 1))
	req := server.ExplainRequest{Dataset: "alpha", Points: []int{0}}
	resp, want := postJSON(t, base+"/v1/explain", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain before restart: %d %s", resp.StatusCode, want)
	}
	if stats := getStats(t, base); stats.Durable == nil || stats.Durable.Appends != 2 {
		t.Fatalf("stats.Durable = %+v, want 2 appends", stats.Durable)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("first run exited: %v", err)
	}

	base2, done2, cancel2 := startAnexd(t, options{dataDir: dir})
	defer func() { cancel2(); <-done2 }()
	if stats := getStats(t, base2); stats.Datasets != 2 {
		t.Fatalf("recovered %d datasets, want 2", stats.Datasets)
	}
	resp2, got := postJSON(t, base2+"/v1/explain", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("explain after restart: %d %s", resp2.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("recovered explanation differs:\nwant %s\ngot  %s", want, got)
	}
}

// TestAnexdFailpointsFlagDegrades drills the operator story end to end:
// a daemon armed with -failpoints at the WAL append site degrades to
// read-only on the first durable write — 503 + Retry-After for writes,
// degraded /healthz, explains still served.
func TestAnexdFailpointsFlagDegrades(t *testing.T) {
	base, done, cancel := startAnexd(t, options{
		dataDir:    t.TempDir(),
		failpoints: "durable.wal.append=error@2",
	})
	defer func() { cancel(); <-done }()

	register(t, base, "ok", testCSV(60, 1)) // hit 1: allowed through
	resp, body := postJSON(t, base+"/v1/datasets", server.RegisterRequest{Name: "boom", CSV: testCSV(70, 1), Header: true})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("register at armed site: %d %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded 503 carries no Retry-After")
	}
	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health server.HealthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || health.Status != "degraded" {
		t.Errorf("healthz = %d %+v, want 200 with degraded status", hresp.StatusCode, health)
	}
	if resp, body := postJSON(t, base+"/v1/explain", server.ExplainRequest{Dataset: "ok", Points: []int{0}}); resp.StatusCode != http.StatusOK {
		t.Errorf("explain while degraded: %d %s, want 200", resp.StatusCode, body)
	}
}

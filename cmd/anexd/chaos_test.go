package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"anex/internal/client"
	"anex/internal/server"
)

// anexdProc is one real anexd OS process under test.
type anexdProc struct {
	cmd  *exec.Cmd
	base string
}

// startProc execs the built binary and parses the bound address off its
// stderr banner ("anexd: listening on ...").
func startProc(t *testing.T, bin string, args ...string) *anexdProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		const banner = "anexd: listening on "
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, banner) {
				addrc <- strings.TrimPrefix(line, banner)
				break
			}
		}
		io.Copy(io.Discard, stderr) // keep draining so the child never blocks
	}()
	select {
	case addr := <-addrc:
		return &anexdProc{cmd: cmd, base: "http://" + addr}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("anexd never printed its listen banner")
		return nil
	}
}

// TestAnexdChaosKill9Recovery is the crash smoke the whole PR exists for:
// a real anexd process, killed with SIGKILL mid-registration-loop, must
// come back from its -data-dir serving every acked dataset with
// byte-identical explanations — and the retrying client must ride through
// the whole episode without special-casing.
func TestAnexdChaosKill9Recovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real binary")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "anexd")
	if out, err := exec.Command("go", "build", "-o", bin, "anex/cmd/anexd").CombinedOutput(); err != nil {
		t.Fatalf("build anexd: %v\n%s", err, out)
	}
	dataDir := filepath.Join(tmp, "data")

	proc := startProc(t, bin, "-data-dir", dataDir)
	defer func() {
		if proc.cmd.ProcessState == nil {
			proc.cmd.Process.Kill()
			proc.cmd.Wait()
		}
	}()
	newClient := func(base string) *client.Client {
		c, err := client.New(client.Config{
			BaseURL:        base,
			MaxAttempts:    3,
			BaseDelay:      10 * time.Millisecond,
			MaxDelay:       100 * time.Millisecond,
			RequestTimeout: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	cl := newClient(proc.base)
	ctx := context.Background()

	// Register until the kill lands: each acked dataset's explanation bytes
	// are captured pre-crash as the recovery oracle. The SIGKILL is sent
	// right after the 4th ack, so the loop dies on a later iteration —
	// a client mid-conversation, not a clean pause.
	const killAfter = 4
	acked := map[string]string{}
	want := map[string][]byte{}
	for i := 0; i < 32; i++ {
		name := fmt.Sprintf("d%02d", i)
		csv := testCSV(60+2*i, 1)
		if _, err := cl.Register(ctx, name, []byte(csv), true); err != nil {
			break // the daemon is dead; everything acked so far must survive
		}
		raw, err := cl.ExplainRaw(ctx, server.ExplainRequest{Dataset: name, Points: []int{0}})
		if err != nil {
			break // ack landed but the capture died with the process: still must survive
		}
		acked[name], want[name] = csv, raw
		if len(acked) == killAfter {
			if err := proc.cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no fsync courtesy
				t.Fatal(err)
			}
		}
	}
	proc.cmd.Wait()
	if len(acked) < killAfter {
		t.Fatalf("only %d registrations acked before the daemon died, want ≥ %d", len(acked), killAfter)
	}

	// Restart over the same data dir: the kernel released the flock with the
	// process, so this must come up immediately.
	proc2 := startProc(t, bin, "-data-dir", dataDir)
	defer func() {
		proc2.cmd.Process.Kill()
		proc2.cmd.Wait()
	}()
	cl2 := newClient(proc2.base)
	h, err := cl2.Health(ctx)
	if err != nil || h.Degraded {
		t.Fatalf("health after crash recovery = %+v, %v; want healthy", h, err)
	}
	stats, err := cl2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Datasets < len(acked) {
		t.Errorf("recovered %d datasets, want ≥ %d acked ones", stats.Datasets, len(acked))
	}
	for name, pre := range want {
		post, err := cl2.ExplainRaw(ctx, server.ExplainRequest{Dataset: name, Points: []int{0}})
		if err != nil {
			t.Errorf("explain %s after recovery: %v", name, err)
			continue
		}
		if !bytes.Equal(pre, post) {
			t.Errorf("dataset %s: post-crash explanation differs from pre-crash bytes", name)
		}
	}
	// Idempotent re-registration of an acked dataset is a no-op ack — the
	// blind-retry contract a client relies on after a lost response.
	for name, csv := range acked {
		resp, err := cl2.Register(ctx, name, []byte(csv), true)
		if err != nil || resp.Replaced {
			t.Errorf("re-register %s after recovery = %+v, %v; want idempotent ack", name, resp, err)
		}
		break
	}
}

// Command anexd serves explanations over HTTP/JSON: a long-lived process
// that keeps the shared neighbourhood plane and per-dataset score memos
// warm across requests, so repeated explanations of a registered dataset
// cost cache lookups instead of detector work.
//
// Usage:
//
//	anexd [-addr :8347] [-data-dir DIR] [-max-inflight N] [-rate R]
//	      [-burst B] [-plane-mb 256] [-cache-mb 256] [-workers N]
//	      [-landmarks N] [-no-prune] [-quant N] [-no-quant]
//	      [-grace 15s] [-failpoints SPEC]
//
// Endpoints:
//
//	POST   /v1/datasets         register a CSV payload under a name
//	DELETE /v1/datasets/{name}  forget a dataset (durable tombstone first)
//	POST   /v1/explain          explain points (same knobs and output as anexplain)
//	GET    /v1/stats            cache reuse, admission and latency counters
//	GET    /healthz             liveness + degraded flag
//
// With -data-dir (or ANEXD_DATA_DIR) every registration and forget is
// written to a checksummed write-ahead log before it is acknowledged, and
// a restart — graceful or kill -9 — recovers the registry from disk:
// every acked dataset explains byte-identically afterwards. If a durable
// write ever fails, the store fail-stops and the server degrades to
// read-only: registered tenants keep explaining, writes answer 503 with
// Retry-After until an operator restarts the process.
//
// -failpoints (or ANEXD_FAILPOINTS) arms deterministic fault injection
// (see internal/failpoint) for crash drills; never set it in production.
//
// SIGINT/SIGTERM drain in-flight requests and exit 0 (a clean shutdown);
// requests still running after -grace are hard-cancelled and the exit is
// non-zero. Saturation (past -max-inflight or -rate) answers 429 with a
// Retry-After header instead of queueing.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"anex/internal/clix"
	"anex/internal/durable"
	"anex/internal/failpoint"
	"anex/internal/neighbors"
	"anex/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8347", "listen address (host:port; :0 picks a free port)")
		dataDir     = flag.String("data-dir", clix.EnvString("ANEXD_DATA_DIR", ""), "durable dataset store directory; empty = in-memory only (env ANEXD_DATA_DIR)")
		failpoints  = flag.String("failpoints", clix.EnvString("ANEXD_FAILPOINTS", ""), "fault-injection spec site=action[@hit][;...] for crash drills (env ANEXD_FAILPOINTS)")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently served explanation requests (0 = the worker budget)")
		rate        = flag.Float64("rate", 0, "admitted POST requests per second, token bucket (0 = unlimited)")
		burst       = flag.Int("burst", 0, "token-bucket capacity (0 = ceil(rate))")
		planeMB     = flag.Int("plane-mb", 0, "byte budget (MiB) of the shared neighbourhood plane (0 = default 256)")
		cacheMB     = flag.Int("cache-mb", 0, "byte budget (MiB) of each dataset's per-detector score memo (0 = default 256)")
		workers     = flag.Int("workers", 0, "scoring workers per request (0 = GOMAXPROCS); results are identical at any count")
		landmarks   = flag.Int("landmarks", 0, "landmark count of the pruned candidate tier on wide views (0 = automatic); results are bit-identical at any value")
		noPrune     = flag.Bool("no-prune", false, "disable the landmark-pruned candidate tier (wide views fall back to the plain exhaustive scan)")
		quantTile   = flag.Int("quant", 0, "candidate tile size of the quantized prefilter under the kNN tiers (0 = default 64); results are bit-identical at any value")
		noQuant     = flag.Bool("no-quant", false, "disable the quantized prefilter (candidates go straight to the exact distance kernel)")
		grace       = flag.Duration("grace", 15*time.Second, "shutdown drain deadline before in-flight requests are hard-cancelled")
	)
	flag.Parse()

	// The landmark tier is process-wide state consulted by every index the
	// engine's plane builds, so it is configured before the engine exists.
	neighbors.SetPruneConfig(neighbors.PruneConfig{
		Landmarks: *landmarks,
		Disabled:  *noPrune,
		QuantTile: *quantTile,
		NoQuant:   *noQuant,
	})

	// Unlike the one-shot CLIs (internal/clix: interrupt → exit 130), a
	// signal to the daemon means "drain and exit cleanly".
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, options{
		addr:        *addr,
		dataDir:     *dataDir,
		failpoints:  *failpoints,
		maxInflight: *maxInflight,
		rate:        *rate,
		burst:       *burst,
		planeMB:     *planeMB,
		cacheMB:     *cacheMB,
		workers:     *workers,
		grace:       *grace,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "anexd:", err)
		os.Exit(1)
	}
}

type options struct {
	addr        string
	dataDir     string
	failpoints  string
	maxInflight int
	rate        float64
	burst       int
	planeMB     int
	cacheMB     int
	workers     int
	grace       time.Duration
	// ready, when non-nil, receives the bound address once the listener is
	// up (the test seam for -addr :0).
	ready chan<- string
}

func run(ctx context.Context, opts options) error {
	if opts.failpoints != "" {
		if err := failpoint.Enable(opts.failpoints); err != nil {
			return err
		}
		defer failpoint.Disable()
		fmt.Fprintf(os.Stderr, "anexd: FAULT INJECTION ARMED: %s\n", opts.failpoints)
	}
	eng := server.NewEngine(server.EngineConfig{
		Workers:    opts.workers,
		CacheBytes: int64(opts.cacheMB) << 20,
		PlaneBytes: int64(opts.planeMB) << 20,
	})
	var store *durable.Store
	if opts.dataDir != "" {
		st, recovered, err := durable.Open(opts.dataDir)
		if err != nil {
			return fmt.Errorf("data dir %s: %w", opts.dataDir, err)
		}
		defer st.Close()
		store = st
		for _, rec := range recovered {
			if _, err := eng.RegisterCSV(rec.Name, rec.CSV, rec.Header); err != nil {
				return fmt.Errorf("recover dataset %q: %w", rec.Name, err)
			}
		}
		fmt.Fprintf(os.Stderr, "anexd: recovered %d datasets from %s\n", len(recovered), opts.dataDir)
	}
	srv := server.New(eng, server.Config{
		MaxInflight: opts.maxInflight,
		Rate:        opts.rate,
		Burst:       opts.burst,
		Durable:     store,
		OnDegrade: func(err error) {
			fmt.Fprintf(os.Stderr, "anexd: DEGRADED (read-only until restart): %v\n", err)
		},
	})

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "anexd: listening on %s\n", ln.Addr())
	if opts.ready != nil {
		opts.ready <- ln.Addr().String()
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight requests finish, exit
	// clean. Past the grace deadline the remaining connections are
	// hard-closed and the exit reports the incomplete drain.
	fmt.Fprintln(os.Stderr, "anexd: draining in-flight requests")
	drainCtx, cancel := context.WithTimeout(context.Background(), opts.grace)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		httpSrv.Close()
		return fmt.Errorf("drain incomplete after %s: %w", opts.grace, err)
	}
	return nil
}
